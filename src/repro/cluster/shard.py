"""Worker-shard backends: in-process for tests, subprocess for deployment.

A shard is one full durable engine owning a disjoint, hash-routed subset
of every table's rows.  The cluster front end talks to shards through one
small interface so the same scatter-gather code drives both flavours:

* :class:`LocalShard` — a :class:`~repro.service.concurrency.ConcurrentQueryService`
  (optionally over a :class:`~repro.storage.durable.DurableDatabase` data
  directory) living in the front end's process.  No serialization, no
  sockets: the configuration unit tests use to pin cluster semantics.
* :class:`ProcessShard` — a :class:`~repro.service.server.QueryServer`
  subprocess managed by a
  :class:`~repro.cluster.supervisor.ShardSupervisor`, spoken to over the
  existing JSON-lines protocol via
  :class:`~repro.service.wire.ClusterClient`.  This is the
  multi-process deployment the GIL cannot bound.

``execute`` returns shard answers normalised to
(:data:`"scalar"`, ``[ShardAnswer, ...]``) or (:data:`"groups"`,
``{label: [ShardAnswer, ...]}``) so the gather layer never cares which
flavour produced them.
"""

from __future__ import annotations

from pathlib import Path

from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..service.concurrency import ConcurrentQueryService
from ..service.database import Database
from ..service.wire import ClusterClient, WireError
from ..sql.ast import UnsupportedQueryError
from ..sql.parser import ParseError
from .gather import ShardAnswer

#: Server error frames translated back into the exception the single-node
#: service would have raised locally, so cluster callers see identical
#: error semantics.
_WIRE_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "ParseError": ParseError,
    "UnsupportedQueryError": UnsupportedQueryError,
}


def _raise_wire_error(error: WireError):
    raised = _WIRE_ERROR_TYPES.get(error.error_type)
    if raised is not None:
        raise raised(error.message) from error
    raise error


class LocalShard:
    """An in-process worker shard (thread-safe concurrent service)."""

    def __init__(
        self,
        index: int,
        data_dir: str | Path | None = None,
        **database_kwargs,
    ) -> None:
        self.index = index
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is not None:
            database = Database.open(self.data_dir, **database_kwargs)
        else:
            database = Database(**database_kwargs)
        self.service = ConcurrentQueryService(database=database)

    # ------------------------------------------------------------------ #

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        managed = self.service.register_table(
            table, params=params, partition_size=partition_size
        )
        return {"rows": managed.num_rows, "partitions": managed.num_partitions}

    def ingest(self, table_name: str, rows: Table) -> dict:
        result = self.service.ingest(table_name, rows)
        return {
            "appended_rows": result.appended_rows,
            "total_partitions": result.total_partitions,
        }

    def execute(self, sql: str):
        result = self.service.execute(sql)
        if isinstance(result, dict):
            return "groups", {
                label: [ShardAnswer.from_result(r) for r in results]
                for label, results in result.items()
            }
        return "scalar", [ShardAnswer.from_result(r) for r in result]

    def table_names(self) -> list[str]:
        return self.service.table_names

    def stat(self, table_name: str) -> dict:
        managed = self.service.table(table_name)
        return {"rows": managed.num_rows, "partitions": managed.num_partitions}

    def drop(self, table_name: str) -> None:
        self.service.drop_table(table_name)

    def checkpoint(self) -> dict:
        result = self.service.checkpoint()
        return {
            "checkpoint_lsn": result.checkpoint_lsn,
            "tables": result.tables,
            "skipped": result.skipped,
        }

    def persist(self) -> int:
        return self.service.persist()

    def reconnect(self) -> None:  # pragma: no cover - interface symmetry
        pass

    def close(self) -> None:
        close = getattr(self.service.database, "close", None)
        if close is not None:
            close()


class ProcessShard:
    """A worker shard living in a supervised ``QueryServer`` subprocess.

    Wire connections are pooled: each in-flight operation borrows its own
    connection (opening one on demand), so a slow call — a shard ingest
    recompressing its tail — never head-of-line blocks the queries
    scattering to the same worker.  The pool's steady-state size is the
    front end's concurrency, a handful of sockets.
    """

    def __init__(
        self, index: int, host: str, port: int, timeout: float | None = 600.0
    ) -> None:
        import threading

        self.index = index
        self.host = host
        self.port = port
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._free: list[ClusterClient] = []
        self._generation = 0
        # Open (and keep) one connection eagerly so construction fails
        # fast when the worker is not listening.
        self._give_back(self._generation, self._connect())

    def _connect(self) -> ClusterClient:
        return ClusterClient(self.host, self.port, timeout=self.timeout).connect()

    def _borrow(self) -> tuple[int, ClusterClient]:
        with self._mutex:
            generation = self._generation
            if self._free:
                return generation, self._free.pop()
        return generation, self._connect()

    def _give_back(self, generation: int, client: ClusterClient) -> None:
        with self._mutex:
            if generation == self._generation:
                self._free.append(client)
                return
        client.close()  # stale generation: the worker was restarted

    def _call(self, fn):
        generation, client = self._borrow()
        try:
            result = fn(client)
        except WireError as error:
            # The error arrived as a well-formed response frame; the
            # connection is still in protocol sync and reusable.
            self._give_back(generation, client)
            _raise_wire_error(error)
        except BaseException:
            client.close()
            raise
        self._give_back(generation, client)
        return result

    def reconnect(self, port: int | None = None) -> None:
        """Point the pool at a restarted worker; stale sockets are dropped."""
        with self._mutex:
            self._generation += 1
            stale, self._free = self._free, []
            if port is not None:
                self.port = port
        for client in stale:
            client.close()
        self._give_back(self._generation, self._connect())

    # ------------------------------------------------------------------ #

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        return self._call(
            lambda client: client.register(
                table, params=params, partition_size=partition_size
            )
        )

    def ingest(self, table_name: str, rows: Table) -> dict:
        return self._call(lambda client: client.ingest(table_name, rows))

    def execute(self, sql: str):
        payload = self._call(lambda client: client.query(sql))
        if "groups" in payload:
            return "groups", {
                label: [ShardAnswer.from_wire(r) for r in results]
                for label, results in payload["groups"].items()
            }
        return "scalar", [ShardAnswer.from_wire(r) for r in payload["results"]]

    def table_names(self) -> list[str]:
        return self._call(lambda client: client.tables())

    def stat(self, table_name: str) -> dict:
        return self._call(lambda client: client.stat(table_name))

    def drop(self, table_name: str) -> None:
        self._call(lambda client: client.drop(table_name))

    def checkpoint(self) -> dict:
        return self._call(lambda client: client.checkpoint())

    def persist(self) -> int:
        return self._call(lambda client: client.persist())

    def close(self) -> None:
        with self._mutex:
            self._generation += 1
            stale, self._free = self._free, []
        for client in stale:
            client.close()
