"""Sharded multi-process cluster: shard router, scatter-gather, supervision.

The horizontal-scaling layer above the durable single-node service:

* :mod:`repro.cluster.router` — deterministic row-hash placement of every
  row onto one of N worker shards;
* :mod:`repro.cluster.shard` — worker backends: in-process
  (:class:`LocalShard`) or supervised ``QueryServer`` subprocesses
  (:class:`ProcessShard`) speaking the JSON-lines protocol;
* :mod:`repro.cluster.supervisor` — :class:`ShardSupervisor`: spawn,
  health-check, restart-with-recovery of the worker fleet;
* :mod:`repro.cluster.gather` — recombination of per-shard synopsis
  answers (COUNT/SUM add, AVG via weighted sums, GROUP BY unions,
  conservative bounds);
* :mod:`repro.cluster.service` — :class:`ClusterQueryService`, the
  scatter-gather front end (plus :class:`AsyncClusterService`, its
  asyncio face for ``python -m repro.service --shards N``).
"""

from .gather import GatherPlan, ShardAnswer, gather_groups, gather_scalar, plan_query
from .router import ShardRouter
from .service import (
    AsyncClusterService,
    ClusterCheckpointResult,
    ClusterIngestResult,
    ClusterQueryService,
    ClusterTable,
)
from .shard import LocalShard, ProcessShard
from .supervisor import ShardSupervisor, WorkerHandle

__all__ = [
    "AsyncClusterService",
    "ClusterCheckpointResult",
    "ClusterIngestResult",
    "ClusterQueryService",
    "ClusterTable",
    "GatherPlan",
    "LocalShard",
    "ProcessShard",
    "ShardAnswer",
    "ShardRouter",
    "ShardSupervisor",
    "WorkerHandle",
    "gather_groups",
    "gather_scalar",
    "plan_query",
]
