"""Columnar table, schema, synthetic datasets and sampling utilities."""

from .schema import ColumnSchema, ColumnType, TableSchema
from .table import Table
from .sampling import SampleInfo, stratified_sample, uniform_sample
from .datasets import DATASET_GENERATORS, available_datasets, load_dataset
from .idebench import IdeBenchScaler, scale_dataset

__all__ = [
    "ColumnSchema",
    "ColumnType",
    "TableSchema",
    "Table",
    "SampleInfo",
    "uniform_sample",
    "stratified_sample",
    "DATASET_GENERATORS",
    "available_datasets",
    "load_dataset",
    "IdeBenchScaler",
    "scale_dataset",
]
