"""IDEBench-style dataset scale-up.

The paper uses IDEBench to scale the Power and Flights datasets up to one
billion rows for the comprehensive experiments (§6).  IDEBench fits simple
statistical models to the source data (the paper notes "normalisation and
Gaussian models") and then samples as many synthetic rows as requested.

:class:`IdeBenchScaler` does the same offline: it fits, per numeric column, a
Gaussian marginal; preserves cross-column correlation through a Gaussian
copula on the rank-transformed data; models categorical columns as
multinomials; and reproduces per-column null fractions.  Scaled datasets are
drawn from this model at whatever row count the caller asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import TableSchema
from .table import Table


@dataclass
class _NumericModel:
    mean: float
    std: float
    minimum: float
    maximum: float
    decimals: int
    null_fraction: float


@dataclass
class _CategoricalModel:
    labels: list[str]
    probabilities: np.ndarray
    null_fraction: float


@dataclass
class IdeBenchScaler:
    """Fit a generative model to a table and sample scaled-up versions of it."""

    source: Table
    seed: int = 0
    _numeric_models: dict[str, _NumericModel] = field(default_factory=dict, init=False)
    _categorical_models: dict[str, _CategoricalModel] = field(default_factory=dict, init=False)
    _numeric_order: list[str] = field(default_factory=list, init=False)
    _correlation: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._fit()

    # ------------------------------------------------------------------ #

    def _fit(self) -> None:
        table = self.source
        standardized: list[np.ndarray] = []
        for cschema in table.schema:
            col = table.column(cschema.name)
            if cschema.is_categorical:
                non_null = [v for v in col if v is not None]
                labels, counts = np.unique(np.asarray(non_null, dtype=object), return_counts=True)
                probs = counts / counts.sum() if counts.sum() else np.array([])
                self._categorical_models[cschema.name] = _CategoricalModel(
                    labels=list(labels),
                    probabilities=probs,
                    null_fraction=table.null_fraction(cschema.name),
                )
            else:
                finite = col[np.isfinite(col)]
                if finite.size == 0:
                    finite = np.array([0.0])
                std = float(finite.std())
                model = _NumericModel(
                    mean=float(finite.mean()),
                    std=std if std > 0 else 1e-9,
                    minimum=float(finite.min()),
                    maximum=float(finite.max()),
                    decimals=cschema.decimals,
                    null_fraction=table.null_fraction(cschema.name),
                )
                self._numeric_models[cschema.name] = model
                self._numeric_order.append(cschema.name)
                filled = np.where(np.isfinite(col), col, model.mean)
                standardized.append((filled - model.mean) / model.std)
        if standardized:
            matrix = np.vstack(standardized)
            with np.errstate(invalid="ignore", divide="ignore"):
                corr = np.corrcoef(matrix) if matrix.shape[0] > 1 else np.array([[1.0]])
            corr = np.nan_to_num(corr, nan=0.0)
            np.fill_diagonal(corr, 1.0)
            # Nudge to positive semi-definite for Cholesky-free sampling.
            eigvals, eigvecs = np.linalg.eigh(corr)
            eigvals = np.clip(eigvals, 1e-6, None)
            self._correlation = (eigvecs * eigvals) @ eigvecs.T
        else:
            self._correlation = None

    # ------------------------------------------------------------------ #

    def generate(self, rows: int, name: str | None = None, seed: int | None = None) -> Table:
        """Sample a scaled dataset with ``rows`` rows from the fitted model."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        columns: dict[str, np.ndarray] = {}

        if self._numeric_order and self._correlation is not None:
            dim = len(self._numeric_order)
            normal = rng.standard_normal((rows, dim))
            chol = np.linalg.cholesky(self._correlation + 1e-9 * np.eye(dim))
            correlated = normal @ chol.T
        else:
            correlated = np.zeros((rows, 0))

        for idx, cname in enumerate(self._numeric_order):
            model = self._numeric_models[cname]
            values = model.mean + model.std * correlated[:, idx]
            values = np.clip(values, model.minimum, model.maximum)
            values = np.round(values, model.decimals)
            if model.null_fraction > 0:
                mask = rng.random(rows) < model.null_fraction
                values[mask] = np.nan
            columns[cname] = values

        for cname, model in self._categorical_models.items():
            out = np.empty(rows, dtype=object)
            if len(model.labels):
                idx = rng.choice(len(model.labels), size=rows, p=model.probabilities)
                for i, j in enumerate(idx):
                    out[i] = model.labels[j]
            if model.null_fraction > 0:
                mask = rng.random(rows) < model.null_fraction
                out[mask] = None
            columns[cname] = out

        # Preserve original column order.
        ordered = {c.name: columns[c.name] for c in self.source.schema}
        return Table(
            name=name or f"{self.source.name}_scaled",
            schema=TableSchema(list(self.source.schema.columns)),
            columns=ordered,
        )


def scale_dataset(source: Table, rows: int, seed: int = 0, name: str | None = None) -> Table:
    """Convenience wrapper: fit an :class:`IdeBenchScaler` and sample once."""
    scaler = IdeBenchScaler(source, seed=seed)
    return scaler.generate(rows, name=name, seed=seed + 1)
