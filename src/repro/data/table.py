"""A small columnar table used as the storage substrate of the reproduction.

The paper evaluates on single relational tables (Table 4) with numeric,
categorical and datetime columns and missing values.  :class:`Table` keeps
each column as a numpy array:

* numeric / datetime columns as ``float64`` with ``NaN`` marking nulls,
* categorical columns as ``object`` arrays of strings with ``None`` nulls.

This is the common input format for the GreedyGD compressor, the exact
query engine, the baselines and PairwiseHist itself.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from .schema import ColumnSchema, ColumnType, TableSchema


def _as_numeric_array(values: Iterable) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    return np.atleast_1d(arr)


def _as_categorical_array(values: Iterable) -> np.ndarray:
    arr = np.empty(len(list(values)) if not hasattr(values, "__len__") else len(values), dtype=object)
    for i, v in enumerate(values):
        if v is None or (isinstance(v, float) and np.isnan(v)):
            arr[i] = None
        else:
            arr[i] = str(v)
    return arr


@dataclass
class Table:
    """Columnar, in-memory relational table.

    Parameters
    ----------
    name:
        Table name used in SQL ``FROM`` clauses.
    schema:
        Column schema.
    columns:
        Mapping of column name to numpy array.  All arrays must have the
        same length.
    """

    name: str
    schema: TableSchema
    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {lengths}")
        for col in self.schema:
            if col.name not in self.columns:
                raise ValueError(f"schema column {col.name!r} missing from data")

    # ------------------------------------------------------------------ #
    # Construction helpers

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable],
        name: str = "data",
        schema: TableSchema | None = None,
    ) -> "Table":
        """Build a table from a mapping of column name to values.

        When ``schema`` is omitted, column types are inferred: string-valued
        columns become categorical, everything else numeric.
        """
        columns: dict[str, np.ndarray] = {}
        inferred: list[ColumnSchema] = []
        for cname, values in data.items():
            values = list(values) if not isinstance(values, np.ndarray) else values
            if schema is not None and cname in schema:
                cschema = schema[cname]
            else:
                cschema = cls._infer_column_schema(cname, values)
            if cschema.is_categorical:
                columns[cname] = _as_categorical_array(values)
            else:
                columns[cname] = _as_numeric_array(values)
            inferred.append(cschema)
        final_schema = schema if schema is not None else TableSchema(inferred)
        return cls(name=name, schema=final_schema, columns=columns)

    @staticmethod
    def _infer_column_schema(name: str, values) -> ColumnSchema:
        sample = None
        for v in values:
            if v is not None and not (isinstance(v, float) and np.isnan(v)):
                sample = v
                break
        if isinstance(sample, str):
            return ColumnSchema(name, ColumnType.CATEGORICAL)
        arr = np.asarray([np.nan if v is None else v for v in values], dtype=float)
        finite = arr[np.isfinite(arr)]
        decimals = 0
        if finite.size and not np.allclose(finite, np.round(finite)):
            decimals = 2
        return ColumnSchema(name, ColumnType.NUMERIC, decimals=decimals)

    # ------------------------------------------------------------------ #
    # Basic protocol

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    @property
    def column_names(self) -> list[str]:
        return self.schema.names

    # ------------------------------------------------------------------ #
    # Row / column operations

    def column(self, name: str) -> np.ndarray:
        """Return the array backing a column."""
        if name not in self.columns:
            raise KeyError(f"no column named {name!r} in table {self.name!r}")
        return self.columns[name]

    def select_rows(self, mask_or_indices: np.ndarray) -> "Table":
        """Return a new table containing only the selected rows."""
        new_columns = {k: v[mask_or_indices] for k, v in self.columns.items()}
        return Table(name=self.name, schema=self.schema, columns=new_columns)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> "Table":
        """Return a uniform random sample of ``n`` rows (without replacement).

        If ``n`` is at least the number of rows, the table itself is
        returned unchanged.
        """
        if n >= self.num_rows:
            return self
        rng = rng if rng is not None else np.random.default_rng(0)
        idx = rng.choice(self.num_rows, size=n, replace=False)
        return self.select_rows(np.sort(idx))

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.select_rows(np.arange(min(n, self.num_rows)))

    def null_mask(self, name: str) -> np.ndarray:
        """Boolean mask of missing values for a column."""
        col = self.column(name)
        if self.schema[name].is_categorical:
            return np.array([v is None for v in col], dtype=bool)
        return ~np.isfinite(col)

    def null_fraction(self, name: str) -> float:
        """Fraction of missing values in a column."""
        if self.num_rows == 0:
            return 0.0
        return float(self.null_mask(name).mean())

    def memory_bytes(self) -> int:
        """Approximate uncompressed in-memory footprint in bytes.

        Categorical columns are accounted as the sum of their string
        lengths, mirroring how the raw CSV-like datasets in the paper are
        sized.
        """
        total = 0
        for name in self.column_names:
            col = self.column(name)
            if self.schema[name].is_categorical:
                total += sum(len(v) if v is not None else 1 for v in col)
            else:
                total += col.nbytes
        return total

    def concat(self, other: "Table") -> "Table":
        """Append another table with the same schema (incremental ingestion)."""
        return Table.concat_all([self, other])

    @classmethod
    def concat_all(cls, tables: "list[Table]") -> "Table":
        """Concatenate many same-schema tables with one copy per column.

        Building an n-table batch this way is O(total rows); repeated
        pairwise ``concat`` calls would copy the accumulated prefix again
        for every table appended.
        """
        if not tables:
            raise ValueError("cannot concatenate zero tables")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise ValueError("cannot concatenate tables with different schemas")
        new_columns = {
            name: np.concatenate([table.column(name) for table in tables])
            for name in first.column_names
        }
        return cls(name=first.name, schema=first.schema, columns=new_columns)

    def to_rows(self) -> list[tuple]:
        """Materialise the table as a list of row tuples (small tables only)."""
        cols = [self.column(n) for n in self.column_names]
        return list(zip(*cols))

    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column summary statistics used by examples and diagnostics."""
        summary: dict[str, dict[str, float]] = {}
        for cschema in self.schema:
            col = self.column(cschema.name)
            if cschema.is_categorical:
                non_null = [v for v in col if v is not None]
                summary[cschema.name] = {
                    "count": float(len(non_null)),
                    "unique": float(len(set(non_null))),
                    "null_fraction": self.null_fraction(cschema.name),
                }
            else:
                finite = col[np.isfinite(col)]
                summary[cschema.name] = {
                    "count": float(finite.size),
                    "min": float(finite.min()) if finite.size else float("nan"),
                    "max": float(finite.max()) if finite.size else float("nan"),
                    "mean": float(finite.mean()) if finite.size else float("nan"),
                    "null_fraction": self.null_fraction(cschema.name),
                }
        return summary
