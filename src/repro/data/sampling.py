"""Row-sampling utilities shared by PairwiseHist and the baselines.

The paper builds every synopsis from a uniform sample of ``Ns`` rows
(Algorithm 1, line 1) and scales COUNT/SUM results back up by the sampling
ratio ``rho = Ns / N``.  The helpers here centralise that logic so the core
library, the baselines and the benchmark harness all sample identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .table import Table


@dataclass(frozen=True)
class SampleInfo:
    """Book-keeping for a synopsis sample.

    Attributes
    ----------
    population_rows:
        ``N`` — number of rows in the full dataset.
    sample_rows:
        ``Ns`` — number of rows actually used to build the synopsis.
    """

    population_rows: int
    sample_rows: int

    @property
    def ratio(self) -> float:
        """The sampling ratio ``rho = Ns / N`` (1.0 for a full scan)."""
        if self.population_rows == 0:
            return 1.0
        return self.sample_rows / self.population_rows

    @property
    def is_full_scan(self) -> bool:
        return self.sample_rows >= self.population_rows


def uniform_sample(
    table: Table, sample_size: int | None, seed: int = 0
) -> tuple[Table, SampleInfo]:
    """Uniformly sample ``sample_size`` rows from ``table``.

    Returns the sampled table together with a :class:`SampleInfo` recording
    the population size, so downstream estimators can rescale counts.
    ``sample_size=None`` means use the full table.
    """
    population = table.num_rows
    if sample_size is None or sample_size >= population:
        return table, SampleInfo(population, population)
    rng = np.random.default_rng(seed)
    sampled = table.sample(sample_size, rng=rng)
    return sampled, SampleInfo(population, sampled.num_rows)


def stratified_sample(
    table: Table, strata_column: str, per_stratum: int, seed: int = 0
) -> tuple[Table, SampleInfo]:
    """Stratified sample used by the BlinkDB-style baseline discussion.

    Takes up to ``per_stratum`` rows from every distinct value of
    ``strata_column``.  Only categorical columns are supported.
    """
    if not table.schema[strata_column].is_categorical:
        raise ValueError("stratified sampling requires a categorical column")
    rng = np.random.default_rng(seed)
    col = table.column(strata_column)
    keys = np.array(["\0NULL" if v is None else v for v in col], dtype=object)
    chosen: list[np.ndarray] = []
    for value in sorted(set(keys)):
        idx = np.flatnonzero(keys == value)
        if idx.size > per_stratum:
            idx = rng.choice(idx, size=per_stratum, replace=False)
        chosen.append(idx)
    indices = np.sort(np.concatenate(chosen)) if chosen else np.array([], dtype=int)
    sampled = table.select_rows(indices)
    return sampled, SampleInfo(table.num_rows, sampled.num_rows)
