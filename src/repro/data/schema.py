"""Column schema definitions for the columnar :class:`~repro.data.table.Table`.

The paper's datasets (Table 4) mix numeric sensor readings, categorical
fields (e.g. airline codes, payment types), date/time columns and missing
values.  The schema layer records, per column, the logical type and the
numeric precision used by the GreedyGD pre-processor (how many decimal
digits are preserved when floats are converted to integers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnType(enum.Enum):
    """Logical data type of a column."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    DATETIME = "datetime"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type are ordered numbers (datetimes count)."""
        return self in (ColumnType.NUMERIC, ColumnType.DATETIME)


@dataclass
class ColumnSchema:
    """Schema for a single column.

    Parameters
    ----------
    name:
        Column name, as used in SQL queries.
    ctype:
        Logical type of the column.
    decimals:
        For NUMERIC columns, the number of decimal digits that must be
        preserved when converting to integers (GreedyGD pre-processing).
    categories:
        For CATEGORICAL columns, the list of category labels.  Optional;
        filled in automatically from the data by the pre-processor when
        absent.
    nullable:
        Whether the column may contain missing values.
    """

    name: str
    ctype: ColumnType = ColumnType.NUMERIC
    decimals: int = 0
    categories: list[str] | None = None
    nullable: bool = True

    @property
    def is_numeric(self) -> bool:
        return self.ctype.is_numeric

    @property
    def is_categorical(self) -> bool:
        return self.ctype is ColumnType.CATEGORICAL


@dataclass
class TableSchema:
    """Ordered collection of :class:`ColumnSchema` objects."""

    columns: list[ColumnSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError("duplicate column names in schema: %r" % (names,))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def __getitem__(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column named {name!r}")

    @property
    def names(self) -> list[str]:
        """Column names in schema order."""
        return [c.name for c in self.columns]

    @property
    def numeric_names(self) -> list[str]:
        """Names of numeric (including datetime) columns."""
        return [c.name for c in self.columns if c.is_numeric]

    @property
    def categorical_names(self) -> list[str]:
        """Names of categorical columns."""
        return [c.name for c in self.columns if c.is_categorical]

    def index_of(self, name: str) -> int:
        """Positional index of a column."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column named {name!r}")

    def add(self, column: ColumnSchema) -> None:
        """Append a column to the schema."""
        if column.name in self:
            raise ValueError(f"column {column.name!r} already exists")
        self.columns.append(column)
