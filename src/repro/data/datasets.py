"""Synthetic stand-ins for the 11 real-world datasets of the paper (Table 4).

The original evaluation downloads public datasets (Kaggle / UCI / city data
portals).  Those files are not available offline, so each dataset is
synthesised with the same column count, mix of data types, missing-value
structure, skew and cross-column correlation described in the paper:

* ``aqua`` / ``build`` — multi-source IoT sensors sharing a timestamp, hence
  many nulls from asynchronous sampling,
* ``basement`` / ``current`` / ``furnace`` / ``power`` — electrical meter
  readings: smooth daily cycles, spikes, strongly correlated sub-meters,
* ``gas`` / ``light`` / ``temp`` — single-source environmental sensors,
* ``flights`` / ``taxis`` — trip records with several categorical columns,
  heavy-tailed numeric columns and missing values.

PairwiseHist's behaviour depends on these distributional properties rather
than on the exact provenance of the rows, so the synthetic datasets exercise
the same code paths as the originals (see DESIGN.md §2).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .schema import ColumnSchema, ColumnType, TableSchema
from .table import Table

#: Registry of dataset name -> generator function, filled by ``_register``.
DATASET_GENERATORS: dict[str, Callable[..., Table]] = {}

#: Default row count for laptop-scale experiments.  The paper's originals
#: range from 4e5 to 1.4e7 rows; generators accept ``rows=`` to change this.
DEFAULT_ROWS = 20_000


def _register(name: str):
    def decorator(fn: Callable[..., Table]) -> Callable[..., Table]:
        DATASET_GENERATORS[name] = fn
        return fn

    return decorator


def available_datasets() -> list[str]:
    """Names of all synthetic datasets, in Table 4 order."""
    return sorted(DATASET_GENERATORS)


def load_dataset(name: str, rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Generate one of the paper's datasets by name (case-insensitive)."""
    key = name.lower()
    if key not in DATASET_GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return DATASET_GENERATORS[key](rows=rows, seed=seed)


# --------------------------------------------------------------------------- #
# Column-level building blocks


def _timestamp(rng: np.random.Generator, rows: int, interval_s: float = 60.0) -> np.ndarray:
    start = 1.4e9
    jitter = rng.uniform(0, interval_s * 0.1, size=rows)
    return start + np.arange(rows) * interval_s + jitter


def _daily_cycle(rows: int, interval_s: float, amplitude: float, phase: float) -> np.ndarray:
    t = np.arange(rows) * interval_s
    day = 86_400.0
    return amplitude * (np.sin(2 * np.pi * (t / day) + phase) + 1.0) / 2.0


def _spiky_load(
    rng: np.random.Generator, rows: int, base: float, spike_prob: float, spike_scale: float
) -> np.ndarray:
    values = base * (1 + 0.2 * rng.standard_normal(rows))
    spikes = rng.random(rows) < spike_prob
    values[spikes] += rng.exponential(spike_scale, size=int(spikes.sum()))
    return np.clip(values, 0, None)


def _skewed_positive(rng: np.random.Generator, rows: int, scale: float, shape: float = 1.2) -> np.ndarray:
    return rng.gamma(shape, scale, size=rows)


def _inject_nulls(rng: np.random.Generator, values: np.ndarray, fraction: float) -> np.ndarray:
    if fraction <= 0:
        return values
    out = values.astype(float).copy()
    mask = rng.random(len(values)) < fraction
    out[mask] = np.nan
    return out


def _zipf_categories(
    rng: np.random.Generator, rows: int, labels: list[str], exponent: float = 1.3
) -> np.ndarray:
    ranks = np.arange(1, len(labels) + 1, dtype=float)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    idx = rng.choice(len(labels), size=rows, p=probs)
    out = np.empty(rows, dtype=object)
    for i, j in enumerate(idx):
        out[i] = labels[j]
    return out


def _round(values: np.ndarray, decimals: int) -> np.ndarray:
    return np.round(values, decimals)


def _numeric(name: str, decimals: int = 2) -> ColumnSchema:
    return ColumnSchema(name, ColumnType.NUMERIC, decimals=decimals)


def _categorical(name: str) -> ColumnSchema:
    return ColumnSchema(name, ColumnType.CATEGORICAL)


def _datetime(name: str) -> ColumnSchema:
    return ColumnSchema(name, ColumnType.DATETIME, decimals=0)


# --------------------------------------------------------------------------- #
# Electrical-meter style datasets (Basement, Current, Furnace, Power)


def _meter_dataset(
    name: str, rows: int, seed: int, num_channels: int, decimals: int = 2
) -> Table:
    rng = np.random.default_rng(seed)
    interval = 60.0
    ts = _timestamp(rng, rows, interval)
    columns: dict[str, np.ndarray] = {"timestamp": ts}
    schema = [_datetime("timestamp")]
    base_cycle = _daily_cycle(rows, interval, amplitude=1.0, phase=rng.uniform(0, 2 * np.pi))
    for ch in range(num_channels):
        phase = rng.uniform(0, 2 * np.pi)
        cycle = 0.6 * base_cycle + 0.4 * _daily_cycle(rows, interval, 1.0, phase)
        level = rng.uniform(0.5, 8.0)
        noise = 0.1 * level * rng.standard_normal(rows)
        spikes = _spiky_load(rng, rows, base=0.0, spike_prob=0.01, spike_scale=3 * level)
        values = np.clip(level * cycle + noise + spikes, 0, None)
        cname = f"channel_{ch:02d}"
        columns[cname] = _round(values, decimals)
        schema.append(_numeric(cname, decimals))
    return Table(name=name, schema=TableSchema(schema), columns=columns)


@_register("basement")
def basement(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Basement power sub-meter readings (12 columns)."""
    return _meter_dataset("basement", rows, seed + 1, num_channels=11)


@_register("current")
def current(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Electric meter current readings (24 columns)."""
    return _meter_dataset("current", rows, seed + 2, num_channels=23)


@_register("furnace")
def furnace(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Furnace power sub-meter readings (12 columns)."""
    return _meter_dataset("furnace", rows, seed + 3, num_channels=11)


@_register("power")
def power(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Household power consumption (10 columns), the paper's Power dataset."""
    rng = np.random.default_rng(seed + 4)
    interval = 60.0
    ts = _timestamp(rng, rows, interval)
    cycle = _daily_cycle(rows, interval, 1.0, 0.3)
    active_power = np.clip(
        1.2 + 2.5 * cycle + 0.4 * rng.standard_normal(rows)
        + _spiky_load(rng, rows, 0.0, 0.02, 3.0),
        0.05,
        None,
    )
    reactive_power = np.clip(0.12 * active_power + 0.05 * rng.standard_normal(rows), 0, None)
    voltage = 240 + 3 * np.sin(np.arange(rows) / 500.0) + rng.standard_normal(rows)
    intensity = active_power * 1000 / voltage
    sub1 = np.clip(active_power * rng.uniform(0.0, 0.3, rows), 0, None)
    sub2 = np.clip(active_power * rng.uniform(0.0, 0.4, rows), 0, None)
    sub3 = np.clip(active_power - sub1 - sub2, 0, None)
    hour = (np.arange(rows) * interval / 3600.0) % 24
    day_of_week = ((np.arange(rows) * interval) // 86_400) % 7
    columns = {
        "timestamp": ts,
        "global_active_power": _round(active_power, 3),
        "global_reactive_power": _round(reactive_power, 3),
        "voltage": _round(voltage, 2),
        "global_intensity": _round(intensity, 2),
        "sub_metering_1": _round(sub1, 2),
        "sub_metering_2": _round(sub2, 2),
        "sub_metering_3": _round(sub3, 2),
        "hour": np.floor(hour),
        "day_of_week": day_of_week.astype(float),
    }
    schema = TableSchema(
        [
            _datetime("timestamp"),
            _numeric("global_active_power", 3),
            _numeric("global_reactive_power", 3),
            _numeric("voltage", 2),
            _numeric("global_intensity", 2),
            _numeric("sub_metering_1", 2),
            _numeric("sub_metering_2", 2),
            _numeric("sub_metering_3", 2),
            _numeric("hour", 0),
            _numeric("day_of_week", 0),
        ]
    )
    return Table(name="power", schema=schema, columns=columns)


# --------------------------------------------------------------------------- #
# Environmental sensor datasets (Gas, Light, Temp)


@_register("gas")
def gas(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Home gas-sensor dataset (12 columns): resistances + humidity/temperature."""
    rng = np.random.default_rng(seed + 5)
    interval = 1.0
    ts = _timestamp(rng, rows, interval)
    temperature = 22 + 4 * _daily_cycle(rows, interval * 3600, 1.0, 0.1) + 0.3 * rng.standard_normal(rows)
    humidity = np.clip(55 - 0.8 * (temperature - 22) + 2 * rng.standard_normal(rows), 20, 90)
    columns: dict[str, np.ndarray] = {
        "timestamp": ts,
        "temperature": _round(temperature, 2),
        "humidity": _round(humidity, 2),
    }
    schema = [_datetime("timestamp"), _numeric("temperature", 2), _numeric("humidity", 2)]
    for s in range(8):
        baseline = rng.uniform(5, 25)
        sensitivity = rng.uniform(0.05, 0.4)
        resistance = baseline * np.exp(-sensitivity * (temperature - 22) / 4) + 0.2 * rng.standard_normal(rows)
        cname = f"sensor_r{s + 1}"
        columns[cname] = _round(np.clip(resistance, 0.1, None), 3)
        schema.append(_numeric(cname, 3))
    flow = _skewed_positive(rng, rows, scale=0.6)
    columns["gas_flow"] = _round(flow, 3)
    schema.append(_numeric("gas_flow", 3))
    return Table(name="gas", schema=TableSchema(schema), columns=columns)


@_register("light")
def light(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """IoT light-detection dataset (9 columns) with a categorical device id."""
    rng = np.random.default_rng(seed + 6)
    interval = 30.0
    ts = _timestamp(rng, rows, interval)
    lux = np.clip(
        900 * _daily_cycle(rows, interval, 1.0, -np.pi / 2) + 40 * rng.standard_normal(rows), 0, None
    )
    detected = (lux > 300).astype(float)
    battery = np.clip(100 - np.arange(rows) * (60.0 / max(rows, 1)) + rng.standard_normal(rows), 5, 100)
    temperature = 20 + 6 * _daily_cycle(rows, interval, 1.0, 0) + rng.standard_normal(rows)
    humidity = np.clip(50 - 0.5 * (temperature - 20) + 2 * rng.standard_normal(rows), 10, 95)
    rssi = -60 + 8 * rng.standard_normal(rows)
    uptime = np.arange(rows) * interval
    devices = _zipf_categories(rng, rows, [f"device_{i}" for i in range(12)])
    columns = {
        "timestamp": ts,
        "device": devices,
        "lux": _round(lux, 1),
        "light_detected": detected,
        "battery": _round(battery, 1),
        "temperature": _round(temperature, 2),
        "humidity": _round(humidity, 2),
        "rssi": _round(rssi, 1),
        "uptime": _round(uptime, 0),
    }
    schema = TableSchema(
        [
            _datetime("timestamp"),
            _categorical("device"),
            _numeric("lux", 1),
            _numeric("light_detected", 0),
            _numeric("battery", 1),
            _numeric("temperature", 2),
            _numeric("humidity", 2),
            _numeric("rssi", 1),
            _numeric("uptime", 0),
        ]
    )
    return Table(name="light", schema=schema, columns=columns)


@_register("temp")
def temp(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Temperature IoT dataset (5 columns)."""
    rng = np.random.default_rng(seed + 7)
    interval = 10.0
    ts = _timestamp(rng, rows, interval)
    ambient = 18 + 8 * _daily_cycle(rows, interval, 1.0, 0.5) + 0.5 * rng.standard_normal(rows)
    device_temp = ambient + 4 + 0.8 * rng.standard_normal(rows)
    humidity = np.clip(60 - 1.2 * (ambient - 18) + 3 * rng.standard_normal(rows), 10, 98)
    sensors = _zipf_categories(rng, rows, [f"probe_{i}" for i in range(6)])
    columns = {
        "timestamp": ts,
        "sensor": sensors,
        "ambient_temperature": _round(ambient, 2),
        "device_temperature": _round(device_temp, 2),
        "humidity": _round(humidity, 2),
    }
    schema = TableSchema(
        [
            _datetime("timestamp"),
            _categorical("sensor"),
            _numeric("ambient_temperature", 2),
            _numeric("device_temperature", 2),
            _numeric("humidity", 2),
        ]
    )
    return Table(name="temp", schema=schema, columns=columns)


# --------------------------------------------------------------------------- #
# Multi-source IoT datasets with many nulls (Aqua, Build)


@_register("aqua")
def aqua(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Aquaponics pond sensors (13 columns) with asynchronous-sampling nulls."""
    rng = np.random.default_rng(seed + 8)
    interval = 120.0
    ts = _timestamp(rng, rows, interval)
    ponds = _zipf_categories(rng, rows, [f"pond_{i}" for i in range(4)], exponent=0.8)
    water_temp = 26 + 2 * _daily_cycle(rows, interval, 1.0, 0.2) + 0.4 * rng.standard_normal(rows)
    ph = np.clip(7.0 + 0.3 * rng.standard_normal(rows), 5.5, 8.5)
    dissolved_o2 = np.clip(8 - 0.15 * (water_temp - 26) + 0.5 * rng.standard_normal(rows), 2, 14)
    turbidity = _skewed_positive(rng, rows, scale=12.0)
    ammonia = _skewed_positive(rng, rows, scale=0.08)
    nitrate = _skewed_positive(rng, rows, scale=3.0)
    tds = 400 + 60 * rng.standard_normal(rows)
    fish_length = np.clip(8 + np.arange(rows) * (10.0 / max(rows, 1)) + rng.standard_normal(rows), 2, None)
    fish_weight = np.clip(0.02 * fish_length ** 2.8 + rng.standard_normal(rows), 0.5, None)
    feed = _skewed_positive(rng, rows, scale=1.5)
    ec = tds * 1.6 + 20 * rng.standard_normal(rows)
    null_frac = 0.25
    columns = {
        "timestamp": ts,
        "pond": ponds,
        "water_temperature": _inject_nulls(rng, _round(water_temp, 2), null_frac),
        "ph": _inject_nulls(rng, _round(ph, 2), null_frac),
        "dissolved_oxygen": _inject_nulls(rng, _round(dissolved_o2, 2), null_frac),
        "turbidity": _inject_nulls(rng, _round(turbidity, 1), null_frac),
        "ammonia": _inject_nulls(rng, _round(ammonia, 3), null_frac),
        "nitrate": _inject_nulls(rng, _round(nitrate, 2), null_frac),
        "tds": _inject_nulls(rng, _round(tds, 1), null_frac),
        "electrical_conductivity": _inject_nulls(rng, _round(ec, 1), null_frac),
        "fish_length": _inject_nulls(rng, _round(fish_length, 1), null_frac),
        "fish_weight": _inject_nulls(rng, _round(fish_weight, 1), null_frac),
        "feed_consumed": _inject_nulls(rng, _round(feed, 2), null_frac),
    }
    schema = TableSchema(
        [_datetime("timestamp"), _categorical("pond")]
        + [
            _numeric(n, d)
            for n, d in [
                ("water_temperature", 2),
                ("ph", 2),
                ("dissolved_oxygen", 2),
                ("turbidity", 1),
                ("ammonia", 3),
                ("nitrate", 2),
                ("tds", 1),
                ("electrical_conductivity", 1),
                ("fish_length", 1),
                ("fish_weight", 1),
                ("feed_consumed", 2),
            ]
        ]
    )
    return Table(name="aqua", schema=schema, columns=columns)


@_register("build")
def build(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Smart-building sensors (7 columns) with asynchronous-sampling nulls."""
    rng = np.random.default_rng(seed + 9)
    interval = 30.0
    ts = _timestamp(rng, rows, interval)
    rooms = _zipf_categories(rng, rows, [f"room_{i}" for i in range(24)], exponent=0.6)
    temperature = 21 + 3 * _daily_cycle(rows, interval, 1.0, 0.4) + 0.5 * rng.standard_normal(rows)
    co2 = np.clip(420 + 350 * _daily_cycle(rows, interval, 1.0, 1.2) + 40 * rng.standard_normal(rows), 380, None)
    humidity = np.clip(45 - 0.7 * (temperature - 21) + 3 * rng.standard_normal(rows), 15, 85)
    luminosity = np.clip(500 * _daily_cycle(rows, interval, 1.0, -np.pi / 2) + 50 * rng.standard_normal(rows), 0, None)
    pir = (rng.random(rows) < (0.1 + 0.5 * _daily_cycle(rows, interval, 1.0, 1.0))).astype(float)
    null_frac = 0.3
    columns = {
        "timestamp": ts,
        "room": rooms,
        "temperature": _inject_nulls(rng, _round(temperature, 2), null_frac),
        "co2": _inject_nulls(rng, _round(co2, 1), null_frac),
        "humidity": _inject_nulls(rng, _round(humidity, 2), null_frac),
        "luminosity": _inject_nulls(rng, _round(luminosity, 1), null_frac),
        "pir_motion": _inject_nulls(rng, pir, null_frac),
    }
    schema = TableSchema(
        [
            _datetime("timestamp"),
            _categorical("room"),
            _numeric("temperature", 2),
            _numeric("co2", 1),
            _numeric("humidity", 2),
            _numeric("luminosity", 1),
            _numeric("pir_motion", 0),
        ]
    )
    return Table(name="build", schema=schema, columns=columns)


# --------------------------------------------------------------------------- #
# Trip-record datasets (Flights, Taxis)

_AIRLINES = ["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX", "OO", "EV", "MQ", "US"]
_AIRPORTS = [
    "ATL", "ORD", "DFW", "DEN", "LAX", "SFO", "PHX", "IAH", "LAS", "MSP",
    "MCO", "SEA", "DTW", "BOS", "EWR", "CLT", "LGA", "SLC", "JFK", "BWI",
]
_CANCEL_REASONS = ["none", "carrier", "weather", "nas", "security"]


@_register("flights")
def flights(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """US flight delays and cancellations (32 columns), the paper's Flights dataset.

    Columns mirror the Kaggle 2015 flight-delays table: date parts, carrier
    and airport categoricals, schedule times, delay components with missing
    values for non-delayed flights, and cancellation fields.
    """
    rng = np.random.default_rng(seed + 10)
    month = rng.integers(1, 13, size=rows).astype(float)
    day = rng.integers(1, 29, size=rows).astype(float)
    day_of_week = rng.integers(1, 8, size=rows).astype(float)
    airline = _zipf_categories(rng, rows, _AIRLINES, exponent=1.1)
    flight_number = rng.integers(1, 7000, size=rows).astype(float)
    tail_number = _zipf_categories(rng, rows, [f"N{900 + i}RP" for i in range(60)], exponent=0.5)
    origin = _zipf_categories(rng, rows, _AIRPORTS, exponent=1.0)
    destination = _zipf_categories(rng, rows, _AIRPORTS, exponent=1.0)
    scheduled_departure = rng.integers(0, 2400, size=rows).astype(float)
    departure_delay = rng.exponential(12, size=rows) - 5 + 25 * (rng.random(rows) < 0.08)
    departure_time = (scheduled_departure + departure_delay) % 2400
    taxi_out = np.clip(rng.gamma(3.0, 5.0, size=rows), 1, None)
    wheels_off = (departure_time + taxi_out) % 2400
    distance = np.clip(rng.gamma(2.2, 380.0, size=rows), 67, 4983)
    scheduled_time = np.clip(distance / 7.5 + 30 + 5 * rng.standard_normal(rows), 20, None)
    air_time = np.clip(distance / 7.8 + 8 * rng.standard_normal(rows), 15, None)
    arrival_delay = departure_delay + 0.3 * (air_time - distance / 7.8) + 5 * rng.standard_normal(rows)
    elapsed_time = scheduled_time + (arrival_delay - departure_delay)
    taxi_in = np.clip(rng.gamma(2.0, 3.5, size=rows), 1, None)
    wheels_on = (wheels_off + air_time) % 1440
    scheduled_arrival = (scheduled_departure + scheduled_time) % 2400
    arrival_time = (scheduled_arrival + arrival_delay) % 2400
    diverted = (rng.random(rows) < 0.002).astype(float)
    cancelled = (rng.random(rows) < 0.015).astype(float)
    cancel_reason = np.empty(rows, dtype=object)
    reasons = _zipf_categories(rng, rows, _CANCEL_REASONS[1:], exponent=0.9)
    for i in range(rows):
        cancel_reason[i] = reasons[i] if cancelled[i] else None

    delayed = arrival_delay > 15
    def _delay_component(scale: float) -> np.ndarray:
        comp = np.where(delayed, rng.exponential(scale, size=rows), 0.0)
        comp = comp.astype(float)
        comp[~delayed] = np.nan
        return np.round(comp, 0)

    air_system_delay = _delay_component(8)
    security_delay = _delay_component(0.5)
    airline_delay = _delay_component(12)
    late_aircraft_delay = _delay_component(10)
    weather_delay = _delay_component(3)

    columns = {
        "year": np.full(rows, 2015.0),
        "month": month,
        "day": day,
        "day_of_week": day_of_week,
        "airline": airline,
        "flight_number": flight_number,
        "tail_number": tail_number,
        "origin_airport": origin,
        "destination_airport": destination,
        "scheduled_departure": scheduled_departure,
        "departure_time": np.round(departure_time, 0),
        "departure_delay": np.round(departure_delay, 0),
        "taxi_out": np.round(taxi_out, 0),
        "wheels_off": np.round(wheels_off, 0),
        "scheduled_time": np.round(scheduled_time, 0),
        "elapsed_time": np.round(elapsed_time, 0),
        "air_time": np.round(air_time, 1),
        "distance": np.round(distance, 0),
        "wheels_on": np.round(wheels_on, 0),
        "taxi_in": np.round(taxi_in, 0),
        "scheduled_arrival": np.round(scheduled_arrival, 0),
        "arrival_time": np.round(arrival_time, 0),
        "arrival_delay": np.round(arrival_delay, 0),
        "diverted": diverted,
        "cancelled": cancelled,
        "cancellation_reason": cancel_reason,
        "air_system_delay": air_system_delay,
        "security_delay": security_delay,
        "airline_delay": airline_delay,
        "late_aircraft_delay": late_aircraft_delay,
        "weather_delay": weather_delay,
        "route_popularity": np.round(_skewed_positive(rng, rows, scale=40.0), 0),
    }
    numeric_decimals = {
        "air_time": 1,
    }
    schema_cols: list[ColumnSchema] = []
    for cname, values in columns.items():
        if values.dtype == object:
            schema_cols.append(_categorical(cname))
        else:
            schema_cols.append(_numeric(cname, numeric_decimals.get(cname, 0)))
    return Table(name="flights", schema=TableSchema(schema_cols), columns=columns)


_PAYMENT_TYPES = ["Credit Card", "Cash", "Mobile", "Prcard", "No Charge", "Unknown"]
_TAXI_COMPANIES = [f"company_{i}" for i in range(20)]


@_register("taxis")
def taxis(rows: int = DEFAULT_ROWS, seed: int = 0) -> Table:
    """Chicago taxi trips (23 columns) with categorical and heavy-tailed columns."""
    rng = np.random.default_rng(seed + 11)
    start = _timestamp(rng, rows, 45.0)
    trip_miles = np.clip(rng.lognormal(0.9, 0.9, size=rows), 0.1, 120)
    trip_seconds = np.clip(trip_miles * 180 + rng.gamma(2.0, 120.0, size=rows), 30, None)
    fare = np.clip(3.25 + 2.3 * trip_miles + 0.3 * trip_seconds / 60 + rng.standard_normal(rows), 3.25, None)
    tips = np.where(rng.random(rows) < 0.55, fare * rng.uniform(0.0, 0.3, rows), 0.0)
    tolls = np.where(rng.random(rows) < 0.03, rng.uniform(1, 12, size=rows), 0.0)
    extras = np.where(rng.random(rows) < 0.25, rng.choice([0.5, 1.0, 2.0, 4.0], size=rows), 0.0)
    total = fare + tips + tolls + extras
    payment = _zipf_categories(rng, rows, _PAYMENT_TYPES, exponent=1.2)
    company = _zipf_categories(rng, rows, _TAXI_COMPANIES, exponent=1.0)
    pickup_area = rng.integers(1, 78, size=rows).astype(float)
    dropoff_area = rng.integers(1, 78, size=rows).astype(float)
    pickup_lat = 41.88 + 0.08 * rng.standard_normal(rows)
    pickup_lon = -87.63 + 0.08 * rng.standard_normal(rows)
    dropoff_lat = pickup_lat + 0.02 * rng.standard_normal(rows)
    dropoff_lon = pickup_lon + 0.02 * rng.standard_normal(rows)
    taxi_id = _zipf_categories(rng, rows, [f"taxi_{i:04d}" for i in range(300)], exponent=0.7)
    hour = np.floor((start % 86_400) / 3600)
    day_of_week = np.floor(start / 86_400) % 7
    month = (np.floor(start / (86_400 * 30)) % 12) + 1
    shared = (rng.random(rows) < 0.07).astype(float)
    null_frac = 0.05
    columns = {
        "trip_start": start,
        "trip_end": start + trip_seconds,
        "taxi_id": taxi_id,
        "company": company,
        "payment_type": payment,
        "trip_seconds": _inject_nulls(rng, np.round(trip_seconds, 0), null_frac),
        "trip_miles": _inject_nulls(rng, np.round(trip_miles, 2), null_frac),
        "fare": _inject_nulls(rng, np.round(fare, 2), null_frac),
        "tips": np.round(tips, 2),
        "tolls": np.round(tolls, 2),
        "extras": np.round(extras, 2),
        "trip_total": np.round(total, 2),
        "pickup_community_area": _inject_nulls(rng, pickup_area, null_frac),
        "dropoff_community_area": _inject_nulls(rng, dropoff_area, null_frac),
        "pickup_latitude": _inject_nulls(rng, np.round(pickup_lat, 5), null_frac),
        "pickup_longitude": _inject_nulls(rng, np.round(pickup_lon, 5), null_frac),
        "dropoff_latitude": _inject_nulls(rng, np.round(dropoff_lat, 5), null_frac),
        "dropoff_longitude": _inject_nulls(rng, np.round(dropoff_lon, 5), null_frac),
        "hour": hour,
        "day_of_week": day_of_week,
        "month": month,
        "shared_trip": shared,
        "passenger_count": np.clip(rng.poisson(1.2, size=rows), 1, 6).astype(float),
    }
    schema_cols = []
    decimals = {
        "trip_miles": 2, "fare": 2, "tips": 2, "tolls": 2, "extras": 2, "trip_total": 2,
        "pickup_latitude": 5, "pickup_longitude": 5, "dropoff_latitude": 5, "dropoff_longitude": 5,
    }
    for cname, values in columns.items():
        if values.dtype == object:
            schema_cols.append(_categorical(cname))
        elif cname in ("trip_start", "trip_end"):
            schema_cols.append(_datetime(cname))
        else:
            schema_cols.append(_numeric(cname, decimals.get(cname, 0)))
    return Table(name="taxis", schema=TableSchema(schema_cols), columns=columns)
