"""The PairwiseHist synopsis container.

A :class:`PairwiseHist` bundles everything produced by Algorithm 1: the
one-dimensional histogram of every column, the two-dimensional histogram of
every pair of columns, the construction parameters and the sampling
book-keeping needed to scale estimates back to the full dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .histogram1d import Histogram1D
from .histogram2d import Histogram2D
from .params import PairwiseHistParams


@dataclass
class PairwiseHist:
    """Collection of 1-d and 2-d histograms plus metadata (Fig. 2, right)."""

    params: PairwiseHistParams
    columns: list[str]
    population_rows: int
    sample_rows: int
    hist1d: dict[str, Histogram1D] = field(default_factory=dict)
    hist2d: dict[tuple[str, str], Histogram2D] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic accessors

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def sampling_ratio(self) -> float:
        """``rho = Ns / N`` — used to rescale COUNT and SUM estimates."""
        if self.population_rows <= 0:
            return 1.0
        return self.sample_rows / self.population_rows

    def column_index(self, name: str) -> int:
        return self.columns.index(name)

    def histogram(self, column: str) -> Histogram1D:
        """One-dimensional histogram for a column."""
        if column not in self.hist1d:
            raise KeyError(f"no histogram for column {column!r}")
        return self.hist1d[column]

    def pair_key(self, column_a: str, column_b: str) -> tuple[str, str]:
        """Canonical (column-order) key under which a pair histogram is stored."""
        ia, ib = self.column_index(column_a), self.column_index(column_b)
        if ia == ib:
            raise ValueError("a pair requires two distinct columns")
        return (column_a, column_b) if ia < ib else (column_b, column_a)

    def pair(self, column_a: str, column_b: str) -> Histogram2D:
        """Two-dimensional histogram covering a pair of columns."""
        key = self.pair_key(column_a, column_b)
        if key not in self.hist2d:
            raise KeyError(f"no pairwise histogram for {key!r}")
        return self.hist2d[key]

    def has_pair(self, column_a: str, column_b: str) -> bool:
        try:
            key = self.pair_key(column_a, column_b)
        except ValueError:
            return False
        return key in self.hist2d

    # ------------------------------------------------------------------ #
    # Merging

    @classmethod
    def merge(
        cls,
        synopses: list["PairwiseHist"],
        params: PairwiseHistParams | None = None,
    ) -> "PairwiseHist":
        """Combine per-partition synopses into one queryable synopsis.

        All inputs must cover the same columns (built from partitions of one
        table sharing a pre-processor, so their code domains line up).
        Population and sample row counts add up; every 1-d and 2-d histogram
        is merged on the union of its partitions' bin edges.  ``params``
        (defaulting to the first input's) becomes the merged synopsis'
        construction parameters, whose ``min_points`` / ``alpha`` drive the
        recomputed centre bounds — pass the whole-table parameters when the
        inputs were built with partition-scaled copies.
        """
        if not synopses:
            raise ValueError("cannot merge zero synopses")
        first = synopses[0]
        if len(synopses) == 1:
            if params is not None and params != first.params:
                # Shallow copy rather than mutating the caller's synopsis.
                return replace(first, params=params)
            return first
        if any(s.columns != first.columns for s in synopses):
            raise ValueError("can only merge synopses over the same columns")
        params = params if params is not None else first.params
        merged = cls(
            params=params,
            columns=list(first.columns),
            population_rows=sum(s.population_rows for s in synopses),
            sample_rows=sum(s.sample_rows for s in synopses),
        )
        for column in first.columns:
            merged.hist1d[column] = Histogram1D.merge(
                [s.hist1d[column] for s in synopses],
                params.min_points,
                params.alpha,
                params.min_spacing,
            )
        for key in first.hist2d:
            if any(key not in s.hist2d for s in synopses):
                continue
            merged.hist2d[key] = Histogram2D.merge(
                [s.hist2d[key] for s in synopses],
                merged.hist1d[key[0]],
                merged.hist1d[key[1]],
                params.min_spacing,
                max_cells=params.max_merged_cells,
            )
        return merged

    # ------------------------------------------------------------------ #
    # Diagnostics

    def total_bins_1d(self) -> int:
        return sum(h.num_bins for h in self.hist1d.values())

    def total_cells_2d(self) -> int:
        return sum(h.counts.size for h in self.hist2d.values())

    def summary(self) -> dict[str, float]:
        """Human-readable construction summary used by examples and logs."""
        return {
            "columns": float(self.num_columns),
            "population_rows": float(self.population_rows),
            "sample_rows": float(self.sample_rows),
            "total_1d_bins": float(self.total_bins_1d()),
            "total_2d_cells": float(self.total_cells_2d()),
            "mean_bins_per_column": float(
                np.mean([h.num_bins for h in self.hist1d.values()]) if self.hist1d else 0.0
            ),
        }
