"""Aggregation estimates and bounds (§5.4, Table 3).

All seven aggregation functions supported by PairwiseHist — COUNT, SUM,
AVG, MIN, MAX, MEDIAN and VAR — are computed from the aggregation column's
1-d histogram metadata and the bin weightings produced by
:class:`~repro.core.weightings.PredicateEvaluator`.  Values are in the
pre-processed (compressed) domain; the engine converts them back to the
original domain afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sql.ast import AggregateFunction
from .histogram1d import Histogram1D
from .hypothesis import terrell_scott_bins
from .weightings import WeightingResult


@dataclass
class AqpEstimate:
    """An approximate aggregate with lower / upper bounds."""

    value: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if np.isfinite(self.lower) and np.isfinite(self.upper) and self.lower > self.upper:
            self.lower, self.upper = self.upper, self.lower

    @property
    def width(self) -> float:
        """Absolute bound width."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether the bounds contain a (ground-truth) value."""
        return bool(self.lower <= value <= self.upper)


_EMPTY = AqpEstimate(float("nan"), float("nan"), float("nan"))


def aggregate(
    func: AggregateFunction,
    hist: Histogram1D,
    weights: WeightingResult,
    sampling_ratio: float,
    min_points: int,
    single_column: bool = False,
) -> AqpEstimate:
    """Dispatch to the Table 3 formulation of one aggregation function."""
    if func is AggregateFunction.COUNT:
        return _count(weights, sampling_ratio)
    if weights.is_empty:
        return _EMPTY
    if func is AggregateFunction.SUM:
        return _sum(hist, weights, sampling_ratio)
    if func is AggregateFunction.AVG:
        return _avg(hist, weights)
    if func is AggregateFunction.MIN:
        return _min(hist, weights, min_points, single_column)
    if func is AggregateFunction.MAX:
        return _max(hist, weights, min_points, single_column)
    if func is AggregateFunction.MEDIAN:
        return _median(hist, weights)
    if func is AggregateFunction.VAR:
        return _var(hist, weights)
    raise ValueError(f"unsupported aggregation function {func}")  # pragma: no cover


# --------------------------------------------------------------------------- #
# COUNT / SUM / AVG


def _count(weights: WeightingResult, rho: float) -> AqpEstimate:
    return AqpEstimate(
        value=float(weights.estimate.sum() / rho),
        lower=float(weights.lower.sum() / rho),
        upper=float(weights.upper.sum() / rho),
    )


def _sum(hist: Histogram1D, weights: WeightingResult, rho: float) -> AqpEstimate:
    midpoints = hist.midpoints
    value = float(weights.estimate @ midpoints / rho)
    lower = float(weights.lower @ hist.centre_lower / rho)
    upper = float(weights.upper @ hist.centre_upper / rho)
    return AqpEstimate(value=value, lower=min(lower, value), upper=max(upper, value))


def _weighted_mean(weights: np.ndarray, values: np.ndarray) -> float:
    total = weights.sum()
    if total <= 0:
        return float("nan")
    return float(weights @ values / total)


def _avg(hist: Histogram1D, weights: WeightingResult) -> AqpEstimate:
    estimate = _weighted_mean(weights.estimate, hist.midpoints)
    candidates = [w for w in (weights.lower, weights.upper) if w.sum() > 0]
    if not candidates:
        candidates = [weights.estimate]
    lower = min(_weighted_mean(w, hist.centre_lower) for w in candidates)
    upper = max(_weighted_mean(w, hist.centre_upper) for w in candidates)
    # Clamp like the other estimators: merged (partitioned) histograms can
    # shift the centre bounds slightly relative to the midpoints.
    return AqpEstimate(value=estimate, lower=min(lower, estimate), upper=max(upper, estimate))


# --------------------------------------------------------------------------- #
# MIN / MAX


def _first_index(mask: np.ndarray) -> int | None:
    indices = np.flatnonzero(mask)
    return int(indices[0]) if indices.size else None


def _last_index(mask: np.ndarray) -> int | None:
    indices = np.flatnonzero(mask)
    return int(indices[-1]) if indices.size else None


def _sub_bin_width(hist: Histogram1D, t: int) -> float:
    s = terrell_scott_bins(int(hist.unique[t]))
    width = hist.v_plus[t] - hist.v_minus[t]
    return width / s if s > 0 else width


def _min(
    hist: Histogram1D, weights: WeightingResult, min_points: int, single_column: bool
) -> AqpEstimate:
    t_est = _first_index(weights.estimate > 0)
    if t_est is None:
        return _EMPTY
    if single_column and hist.unique[t_est] == 2 and weights.estimate[t_est] < hist.counts[t_est] / 2:
        value = float(hist.v_plus[t_est])
    else:
        value = float(hist.v_minus[t_est])

    t_lo = _first_index(weights.upper > 0)
    t_lo = t_est if t_lo is None else t_lo
    if single_column and hist.unique[t_lo] == 2 and weights.upper[t_lo] < hist.counts[t_lo] / 5:
        lower = float(hist.v_plus[t_lo])
    else:
        lower = float(hist.v_minus[t_lo])

    t_hi = _first_index(weights.lower > 0.5)
    t_hi = t_est if t_hi is None else t_hi
    if single_column and hist.unique[t_hi] > 2 and hist.counts[t_hi] > min_points:
        s = terrell_scott_bins(int(hist.unique[t_hi]))
        covered = int(np.floor(s * weights.lower[t_hi] / max(hist.counts[t_hi], 1.0)))
        upper = float(hist.v_plus[t_hi] - covered * _sub_bin_width(hist, t_hi))
    else:
        upper = float(hist.v_plus[t_hi])
    return AqpEstimate(value=value, lower=min(lower, value), upper=max(upper, value))


def _max(
    hist: Histogram1D, weights: WeightingResult, min_points: int, single_column: bool
) -> AqpEstimate:
    t_est = _last_index(weights.estimate > 0)
    if t_est is None:
        return _EMPTY
    if single_column and hist.unique[t_est] == 2 and weights.estimate[t_est] < hist.counts[t_est] / 2:
        value = float(hist.v_minus[t_est])
    else:
        value = float(hist.v_plus[t_est])

    t_lo = _last_index(weights.lower > 0.5)
    t_lo = t_est if t_lo is None else t_lo
    if single_column and hist.unique[t_lo] > 2 and hist.counts[t_lo] > min_points:
        s = terrell_scott_bins(int(hist.unique[t_lo]))
        covered = int(np.floor(s * weights.lower[t_lo] / max(hist.counts[t_lo], 1.0)))
        lower = float(hist.v_minus[t_lo] + covered * _sub_bin_width(hist, t_lo))
    else:
        lower = float(hist.v_minus[t_lo])

    t_hi = _last_index(weights.upper > 0)
    t_hi = t_est if t_hi is None else t_hi
    if single_column and hist.unique[t_hi] == 2 and weights.upper[t_hi] < hist.counts[t_hi] / 5:
        upper = float(hist.v_minus[t_hi])
    else:
        upper = float(hist.v_plus[t_hi])
    return AqpEstimate(value=value, lower=min(lower, value), upper=max(upper, value))


# --------------------------------------------------------------------------- #
# MEDIAN


def _median_bin(weights: np.ndarray) -> int | None:
    total = weights.sum()
    if total <= 0:
        return None
    cumulative = np.cumsum(weights)
    return int(np.searchsorted(cumulative, total / 2.0))


def _median(hist: Histogram1D, weights: WeightingResult) -> AqpEstimate:
    t_est = _median_bin(weights.estimate)
    if t_est is None:
        return _EMPTY
    t_est = min(t_est, hist.num_bins - 1)
    total = weights.estimate.sum()
    below = weights.estimate[:t_est].sum()
    w_t = weights.estimate[t_est]
    fraction = 0.5 if w_t <= 0 else float((total / 2.0 - below) / w_t)
    fraction = float(np.clip(fraction, 0.0, 1.0))
    if hist.unique[t_est] == 2:
        value = float(hist.v_minus[t_est] if fraction < 0.5 else hist.v_plus[t_est])
    else:
        width = hist.v_plus[t_est] - hist.v_minus[t_est]
        value = float(hist.v_minus[t_est] + width * fraction)

    candidate_bins = []
    for w in (weights.lower, weights.upper):
        t = _median_bin(w)
        if t is not None:
            candidate_bins.append(min(t, hist.num_bins - 1))
    if not candidate_bins:
        candidate_bins = [t_est]
    lower = float(hist.v_minus[min(candidate_bins)])
    upper = float(hist.v_plus[max(candidate_bins)])
    return AqpEstimate(value=value, lower=min(lower, value), upper=max(upper, value))


# --------------------------------------------------------------------------- #
# VAR


def _var(hist: Histogram1D, weights: WeightingResult) -> AqpEstimate:
    midpoints = hist.midpoints
    mean = _weighted_mean(weights.estimate, midpoints)
    mean_square = _weighted_mean(weights.estimate, midpoints ** 2)
    # Between-bin variance of midpoints plus the within-bin variance of a
    # uniform distribution over [v-, v+]; the same per-bin uniformity
    # assumption that drives every other estimator in §5.
    within_bin = _weighted_mean(weights.estimate, hist.widths ** 2 / 12.0)
    estimate = max(0.0, mean_square - mean ** 2 + within_bin)

    # xi- / xi+ (Eq. 38-39): per-bin representative points that are as close
    # to / as far from the estimated mean as the bin extrema allow.
    xi_minus = np.where(
        hist.v_plus < mean, hist.v_plus, np.where(hist.v_minus > mean, hist.v_minus, mean)
    )
    distance_low = np.abs(mean - hist.v_minus)
    distance_high = np.abs(hist.v_plus - mean)
    xi_plus = np.where(distance_low > distance_high, hist.v_minus, hist.v_plus)

    candidates = [w for w in (weights.lower, weights.upper) if w.sum() > 0]
    if not candidates:
        candidates = [weights.estimate]

    def variance_with(points: np.ndarray, w: np.ndarray) -> float:
        mu = _weighted_mean(w, points)
        second = _weighted_mean(w, points ** 2)
        return max(0.0, second - mu ** 2)

    lower = min(variance_with(xi_minus, w) for w in candidates)
    upper = max(variance_with(xi_plus, w) for w in candidates)
    return AqpEstimate(value=estimate, lower=min(lower, estimate), upper=max(upper, estimate))
