"""Golomb–Rice coding of non-negative integers.

The sparse PairwiseHist storage layout (§4.3, Fig. 6) encodes the deltas
between non-zero bin-count indices with Golomb coding, which is optimal for
geometrically distributed gaps.  The implementation below uses the
Golomb–Rice restriction (the parameter is a power of two) so quotient /
remainder handling stays on bit boundaries.
"""

from __future__ import annotations

import numpy as np

from ..util.bitstream import BitReader, BitWriter


def rice_parameter(values: np.ndarray | list[int]) -> int:
    """Pick the Rice parameter ``k`` (divisor ``2^k``) for a set of gaps.

    Uses the standard rule of thumb ``k ≈ log2(mean)`` clamped to a sane
    range; an empty input gets ``k = 0``.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0
    mean = max(values.mean(), 0.01)
    return int(np.clip(np.round(np.log2(mean + 1.0)), 0, 30))


def encode_value(writer: BitWriter, value: int, k: int) -> None:
    """Append one Golomb–Rice coded value to a bit stream."""
    if value < 0:
        raise ValueError("Golomb coding requires non-negative values")
    quotient = value >> k
    writer.write_unary(quotient)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def decode_value(reader: BitReader, k: int) -> int:
    """Read one Golomb–Rice coded value from a bit stream."""
    quotient = reader.read_unary()
    remainder = reader.read_bits(k) if k else 0
    return (quotient << k) | remainder


def encode_sequence(values: np.ndarray | list[int], k: int | None = None) -> tuple[bytes, int]:
    """Encode a sequence of non-negative integers; returns ``(payload, k)``."""
    values = [int(v) for v in values]
    if k is None:
        k = rice_parameter(values)
    writer = BitWriter()
    for value in values:
        encode_value(writer, value, k)
    return writer.getvalue(), k


def decode_sequence(payload: bytes, count: int, k: int) -> list[int]:
    """Decode ``count`` Golomb–Rice coded integers from ``payload``."""
    reader = BitReader(payload)
    return [decode_value(reader, k) for _ in range(count)]


def encoded_bit_length(values: np.ndarray | list[int], k: int | None = None) -> int:
    """Number of bits the sequence would occupy (used for size accounting)."""
    values = [int(v) for v in values]
    if k is None:
        k = rice_parameter(values)
    return sum((v >> k) + 1 + k for v in values)
