"""Bin weighted-centre bounds (§4.2, Theorem 1 and Eq. 10).

Each histogram bin stores bounds on the weighted centre (mean) of the data
points it contains.  Bins that passed the uniformity test get the tight
Theorem 1 bounds derived from the chi-squared critical value; bins that did
not pass (fewer than ``M`` points) fall back to the worst-case bounds based
only on the extrema, the unique count and the minimum value spacing ``mu``.
"""

from __future__ import annotations

import numpy as np

from .hypothesis import chi2_critical_value, terrell_scott_bins


def passing_centre_bounds(
    count: float, v_minus: float, v_plus: float, unique: float, alpha: float
) -> tuple[float, float]:
    """Theorem 1 bounds for a bin that passed the uniformity test (Eq. 4)."""
    if count <= 0 or v_plus <= v_minus:
        return v_minus, v_plus
    s = terrell_scott_bins(int(unique))
    if s < 2:
        midpoint = (v_minus + v_plus) / 2.0
        return midpoint, midpoint
    delta = (v_plus - v_minus) / s
    chi2_alpha = chi2_critical_value(alpha, s)
    spread = (delta / 6.0) * np.sqrt(3.0 * chi2_alpha * (s * s - 1.0) / count)
    lower = v_minus + (s - 1.0) * delta / 2.0 - spread
    upper = v_minus + (s + 1.0) * delta / 2.0 + spread
    return float(np.clip(lower, v_minus, v_plus)), float(np.clip(upper, v_minus, v_plus))


def non_passing_centre_bounds(
    count: float, v_minus: float, v_plus: float, unique: float, min_spacing: float
) -> tuple[float, float]:
    """Worst-case bounds for a bin that did not pass the test (Eq. 10, first case).

    The extreme weighted centres occur when ``h - u + 1`` points sit at one
    extremum and the remaining unique values are packed as closely as the
    minimum spacing ``mu`` allows.
    """
    if count <= 0:
        return v_minus, v_plus
    if unique <= 1:
        return v_minus, v_plus
    shift = (unique - 1.0) * unique * min_spacing / (2.0 * count)
    lower = v_minus + shift
    upper = v_plus - shift
    lower = float(np.clip(lower, v_minus, v_plus))
    upper = float(np.clip(upper, v_minus, v_plus))
    if lower > upper:
        midpoint = (v_minus + v_plus) / 2.0
        return midpoint, midpoint
    return lower, upper


def weighted_centre_bounds(
    counts: np.ndarray,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    unique: np.ndarray,
    min_points: int,
    alpha: float,
    min_spacing: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Eq. 10: per-bin weighted-centre bounds for a whole histogram.

    Bins with ``count >= min_points`` are "passing" bins (they survived the
    uniformity test), the rest use the worst-case formulation.
    """
    counts = np.asarray(counts, dtype=float)
    v_minus = np.asarray(v_minus, dtype=float)
    v_plus = np.asarray(v_plus, dtype=float)
    unique = np.asarray(unique, dtype=float)
    lower = np.empty_like(counts)
    upper = np.empty_like(counts)
    for t in range(len(counts)):
        if counts[t] >= min_points:
            lo, hi = passing_centre_bounds(counts[t], v_minus[t], v_plus[t], unique[t], alpha)
        else:
            lo, hi = non_passing_centre_bounds(
                counts[t], v_minus[t], v_plus[t], unique[t], min_spacing
            )
        lower[t] = lo
        upper[t] = hi
    return lower, upper
