"""Uniformity hypothesis testing for bin refinement (§4.1, Eq. 2–3).

A histogram bin is split when a chi-squared test rejects the null
hypothesis that the points inside it are uniformly distributed between its
edges.  The number of sub-bins used by the test follows the Terrell–Scott
inequality ``s = ceil((2u)^(1/3))`` where ``u`` is the number of unique
values in the bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import stats


def terrell_scott_bins(unique_count: int) -> int:
    """Number of chi-squared sub-bins for a bin with ``unique_count`` unique values.

    Eq. 2 of the paper: ``s = ceil((2u)^(1/3))``.
    """
    if unique_count <= 0:
        return 1
    return int(np.ceil((2.0 * unique_count) ** (1.0 / 3.0)))


@lru_cache(maxsize=4096)
def chi2_critical_value(alpha: float, sub_bins: int) -> float:
    """Critical value ``chi2_alpha`` with ``s - 1`` degrees of freedom.

    Defined such that ``Pr(chi2 > chi2_alpha) = alpha`` under the null
    hypothesis.  Cached because the same (alpha, s) pairs recur for every
    bin of every histogram.
    """
    dof = max(1, sub_bins - 1)
    return float(stats.chi2.ppf(1.0 - alpha, dof))


@dataclass(frozen=True)
class UniformityResult:
    """Outcome of one uniformity test (kept for diagnostics / ablations)."""

    statistic: float
    critical_value: float
    sub_bins: int

    @property
    def is_uniform(self) -> bool:
        return self.statistic <= self.critical_value


def uniformity_test(
    values: np.ndarray,
    lower: float,
    upper: float,
    unique_count: int,
    alpha: float,
) -> UniformityResult:
    """Chi-squared test of uniformity for the points of one bin.

    Parameters
    ----------
    values:
        The data points inside the bin.
    lower, upper:
        Bin edges.  Points are assumed to satisfy ``lower <= x <= upper``.
    unique_count:
        Number of unique values among ``values`` (drives the sub-bin count).
    alpha:
        Significance level.
    """
    count = len(values)
    sub_bins = terrell_scott_bins(unique_count)
    # A bin with no points, a single unique value or a degenerate range
    # cannot be refined further, so it is treated as uniform.
    if count == 0 or unique_count <= 1 or sub_bins < 2 or upper <= lower:
        return UniformityResult(statistic=0.0, critical_value=1.0, sub_bins=max(sub_bins, 1))
    counts, _ = np.histogram(values, bins=sub_bins, range=(lower, upper))
    expected = count / sub_bins
    statistic = float(((counts - expected) ** 2 / expected).sum())
    critical = chi2_critical_value(alpha, sub_bins)
    return UniformityResult(statistic=statistic, critical_value=critical, sub_bins=sub_bins)


def is_uniform(
    values: np.ndarray,
    lower: float,
    upper: float,
    unique_count: int,
    alpha: float,
) -> bool:
    """The ``IsUniform`` predicate of Algorithm 2."""
    return uniformity_test(values, lower, upper, unique_count, alpha).is_uniform
