"""PairwiseHist construction parameters (Table 2 of the paper).

PairwiseHist is parameterised by the number of rows sampled to build the
synopsis (``Ns``), the minimum number of points a bin must contain before it
may be split (``M``) and the significance level of the uniformity hypothesis
test (``alpha``).  The paper's evaluation fixes ``M`` to 1 % of ``Ns`` and
``alpha`` to 0.001; :meth:`PairwiseHistParams.with_defaults` reproduces that
rule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PairwiseHistParams:
    """Construction-time parameters for PairwiseHist.

    Attributes
    ----------
    sample_size:
        ``Ns`` — number of rows sampled from the dataset to build the
        synopsis.  ``None`` means use every row.
    min_points:
        ``M`` — bins with fewer points are never split and are treated as
        "non-passing" when computing bounds (§4.2).
    alpha:
        Significance level of the chi-squared uniformity test.
    min_spacing:
        ``mu`` — minimum spacing between distinct values of the (integer)
        compressed domain; used by the non-passing-bin centre bounds.
    max_initial_bins:
        Cap on the number of GD-base-seeded initial bin edges
        (``ceil(Ns / M)`` in Algorithm 1, line 4).
    max_refine_depth:
        Safety limit on the recursion depth of bin refinement.
    seed:
        Seed for the row-sampling RNG, so synopses are reproducible.
    max_merged_cells:
        Optional cell budget for merged 2-d histograms: when combining
        per-partition synopses produces a union grid with more cells than
        this, the grid is re-binned (coarsened) down to the budget so
        merged synopses stay bounded at high partition counts.  ``None``
        disables coarsening.
    """

    sample_size: int | None = 100_000
    min_points: int = 1_000
    alpha: float = 0.001
    min_spacing: float = 1.0
    max_initial_bins: int | None = None
    max_refine_depth: int = 32
    seed: int = 0
    max_merged_cells: int | None = None

    def __post_init__(self) -> None:
        if self.min_points < 2:
            raise ValueError("min_points (M) must be at least 2")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.sample_size is not None and self.sample_size < 1:
            raise ValueError("sample_size (Ns) must be positive")
        if self.max_merged_cells is not None and self.max_merged_cells < 1:
            raise ValueError("max_merged_cells must be positive")

    @classmethod
    def with_defaults(
        cls, sample_size: int | None, alpha: float = 0.001, seed: int = 0
    ) -> "PairwiseHistParams":
        """Paper defaults: ``M`` is 1 % of ``Ns`` (but at least 10)."""
        if sample_size is None:
            min_points = 1_000
        else:
            min_points = max(10, int(round(sample_size * 0.01)))
        return cls(sample_size=sample_size, min_points=min_points, alpha=alpha, seed=seed)

    def scaled_to(self, sample_size: int | None) -> "PairwiseHistParams":
        """Return a copy with a new ``Ns`` and ``M`` re-derived as 1 % of it."""
        if sample_size is None:
            return replace(self, sample_size=None)
        return replace(
            self,
            sample_size=sample_size,
            min_points=max(10, int(round(sample_size * 0.01))),
        )

    @property
    def effective_initial_bins(self) -> int:
        """Maximum number of initial bins: ``ceil(Ns / M)`` (Algorithm 1, line 4)."""
        if self.max_initial_bins is not None:
            return self.max_initial_bins
        if self.sample_size is None:
            return 128
        return max(1, -(-self.sample_size // self.min_points))
