"""PairwiseHist core: synopsis construction, query execution and storage."""

from .params import PairwiseHistParams
from .hypothesis import UniformityResult, chi2_critical_value, is_uniform, terrell_scott_bins, uniformity_test
from .centre_bounds import non_passing_centre_bounds, passing_centre_bounds, weighted_centre_bounds
from .histogram1d import (
    Histogram1D,
    bin_indices,
    distinct_capacity,
    project_extrema,
    projection_matrix,
)
from .histogram2d import AxisMetadata, Histogram2D
from .refine import RefinementResult1D, RefinementResult2D, refine_bin_1d, refine_bin_2d
from .synopsis import PairwiseHist
from .builder import (
    PartitionInput,
    build_pairwise_hist,
    build_partition_synopses,
    build_partitioned_hist,
    partition_params,
)
from .coverage import (
    CoverageResult,
    condition_coverage,
    consolidate_and,
    consolidate_or,
    coverage_bounds,
    coverage_estimate,
    partial_count_bounds,
)
from .weightings import PredicateEvaluator, WeightingResult
from .aggregation import AqpEstimate, aggregate
from .serialization import (
    deserialize,
    deserialize_partitioned,
    serialize,
    serialize_partitioned,
    synopsis_size_bytes,
)
from .golomb import decode_sequence, encode_sequence, rice_parameter
from .groupby import group_predicates
from .engine import AqpResult, PairwiseHistEngine

__all__ = [
    "PairwiseHistParams",
    "UniformityResult",
    "chi2_critical_value",
    "is_uniform",
    "terrell_scott_bins",
    "uniformity_test",
    "non_passing_centre_bounds",
    "passing_centre_bounds",
    "weighted_centre_bounds",
    "Histogram1D",
    "bin_indices",
    "projection_matrix",
    "project_extrema",
    "distinct_capacity",
    "AxisMetadata",
    "Histogram2D",
    "RefinementResult1D",
    "RefinementResult2D",
    "refine_bin_1d",
    "refine_bin_2d",
    "PairwiseHist",
    "PartitionInput",
    "build_pairwise_hist",
    "build_partition_synopses",
    "build_partitioned_hist",
    "partition_params",
    "CoverageResult",
    "condition_coverage",
    "consolidate_and",
    "consolidate_or",
    "coverage_bounds",
    "coverage_estimate",
    "partial_count_bounds",
    "PredicateEvaluator",
    "WeightingResult",
    "AqpEstimate",
    "aggregate",
    "serialize",
    "deserialize",
    "serialize_partitioned",
    "deserialize_partitioned",
    "synopsis_size_bytes",
    "encode_sequence",
    "decode_sequence",
    "rice_parameter",
    "group_predicates",
    "AqpResult",
    "PairwiseHistEngine",
]
