"""The PairwiseHist approximate query engine (the full pipeline of Fig. 2).

:class:`PairwiseHistEngine` ties everything together:

1. *ingestion* — GreedyGD pre-processing (and optionally full compression)
   of a table,
2. *synopsis construction* — :func:`~repro.core.builder.build_pairwise_hist`
   over the pre-processed codes, seeded with GD bases when available,
3. *query execution* — SQL parsing, predicate-literal transformation into
   the compressed domain, coverage / weightings / aggregation, and the
   inverse "aggregation transform" back to the original data domain,
4. *bounds* — every estimate carries a lower / upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.table import Table
from ..gd.greedygd import GreedyGDConfig
from ..gd.preprocessor import Preprocessor
from ..gd.store import CompressedStore
from ..sql.ast import (
    AggregateFunction,
    Aggregation,
    ComparisonOp,
    Condition,
    LogicalOp,
    Predicate,
    PredicateNode,
    Query,
    UnsupportedQueryError,
    predicate_columns,
    predicate_conditions,
)
from ..sql.parser import parse_query
from .aggregation import AqpEstimate, aggregate
from .builder import build_pairwise_hist
from .groupby import group_predicates
from .params import PairwiseHistParams
from .serialization import serialize, synopsis_size_bytes
from .synopsis import PairwiseHist
from .weightings import PredicateEvaluator


@dataclass
class AqpResult:
    """Result of one aggregation: estimate, bounds and basic provenance."""

    aggregation: Aggregation
    estimate: AqpEstimate
    group: str | None = None

    @property
    def value(self) -> float:
        return self.estimate.value

    @property
    def lower(self) -> float:
        return self.estimate.lower

    @property
    def upper(self) -> float:
        return self.estimate.upper

    def relative_error(self, truth: float) -> float:
        """Relative error against a ground-truth value (paper's error metric)."""
        if not np.isfinite(self.value) or not np.isfinite(truth):
            return float("inf")
        denominator = abs(truth) if truth != 0 else 1.0
        return abs(self.value - truth) / denominator


@dataclass
class PairwiseHistEngine:
    """Approximate query engine backed by a PairwiseHist synopsis."""

    synopsis: PairwiseHist
    preprocessor: Preprocessor
    table_name: str
    store: CompressedStore | None = None
    construction_seconds: float = 0.0
    _evaluators: dict[str, PredicateEvaluator] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def from_table(
        cls,
        table: Table,
        params: PairwiseHistParams | None = None,
        use_compression: bool = True,
        build_pairs: bool = True,
        gd_config: GreedyGDConfig | None = None,
    ) -> "PairwiseHistEngine":
        """Build an engine from a raw table.

        ``use_compression=True`` (the paper's proposed framework) compresses
        the table with GreedyGD first and seeds the initial histogram bins
        from the GD bases; ``False`` runs PairwiseHist stand-alone, building
        histograms from min/max initial bins.
        """
        import time

        start = time.perf_counter()
        params = params or PairwiseHistParams.with_defaults(sample_size=100_000)
        if use_compression:
            store = CompressedStore.compress(table, gd_config)
            codes, nulls = store.decoded_codes()
            preprocessor = store.preprocessor
            initial_edges = {
                name: store.base_values(name)
                for name in table.column_names
                if not preprocessor[name].is_categorical
            }
        else:
            store = None
            preprocessor = Preprocessor.fit(table)
            codes, nulls = preprocessor.transform_table(table)
            initial_edges = None
        synopsis = build_pairwise_hist(
            codes,
            params,
            population_rows=table.num_rows,
            null_masks=nulls,
            initial_edges=initial_edges,
            columns=table.column_names,
            build_pairs=build_pairs,
        )
        elapsed = time.perf_counter() - start
        return cls(
            synopsis=synopsis,
            preprocessor=preprocessor,
            table_name=table.name,
            store=store,
            construction_seconds=elapsed,
        )

    @classmethod
    def from_compressed(
        cls,
        store: CompressedStore,
        params: PairwiseHistParams | None = None,
        build_pairs: bool = True,
    ) -> "PairwiseHistEngine":
        """Build an engine directly from an existing GreedyGD store."""
        import time

        start = time.perf_counter()
        params = params or PairwiseHistParams.with_defaults(sample_size=100_000)
        codes, nulls = store.decoded_codes()
        initial_edges = {
            name: store.base_values(name)
            for name in store.column_order
            if not store.preprocessor[name].is_categorical
        }
        synopsis = build_pairwise_hist(
            codes,
            params,
            population_rows=store.num_rows,
            null_masks=nulls,
            initial_edges=initial_edges,
            columns=store.column_order,
            build_pairs=build_pairs,
        )
        elapsed = time.perf_counter() - start
        return cls(
            synopsis=synopsis,
            preprocessor=store.preprocessor,
            table_name=store.table_name,
            store=store,
            construction_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Introspection

    def synopsis_bytes(self) -> int:
        """Serialized synopsis size (the Fig. 8 / Fig. 11 storage metric)."""
        return synopsis_size_bytes(self.synopsis)

    def refresh_synopsis(self, synopsis: PairwiseHist) -> None:
        """Swap in a new synopsis (e.g. re-merged after an incremental
        append) and drop the evaluator caches built against the old one."""
        self.synopsis = synopsis
        self._evaluators.clear()

    def serialize_synopsis(self) -> bytes:
        return serialize(self.synopsis)

    @property
    def sampling_ratio(self) -> float:
        return self.synopsis.sampling_ratio

    def explain_aggregation(self, aggregation: Aggregation, query: Query) -> dict:
        """Plan introspection for EXPLAIN: which synopsis parts one
        aggregation of ``query`` would consult and how its code-domain
        estimate maps back to the data domain (:meth:`_inverse_transform`).

        Pure — mirrors :meth:`_execute_single` without executing.
        """
        column = self._aggregation_column(aggregation, query)
        hist = self.synopsis.hist1d.get(column)
        pred_cols = predicate_columns(query.predicate)
        single_column = all(c == column for c in pred_cols) if pred_cols else True
        info = {
            "aggregation": str(aggregation),
            "weightings_column": column,
            "single_column": single_column,
            "histogram_bins": None if hist is None else int(hist.num_bins),
            "sampling_ratio": float(self.synopsis.sampling_ratio),
            "min_points": self.synopsis.params.min_points,
        }
        func = aggregation.func
        if func is AggregateFunction.COUNT:
            info["bounds"] = {"method": "count_passthrough"}
            return info
        transform = self.preprocessor[column]
        if transform.is_categorical:
            info["bounds"] = {"method": "categorical_passthrough"}
            return info
        scale = float(transform.scale)
        offset = float(transform.offset)
        if func is AggregateFunction.VAR:
            info["bounds"] = {"method": "scale_squared", "scale": scale}
        elif func is AggregateFunction.SUM:
            info["bounds"] = {
                "method": "sum_with_count_bounds",
                "scale": scale,
                "offset": offset,
                "rho": float(self.synopsis.sampling_ratio),
            }
        else:  # AVG / MIN / MAX / MEDIAN
            info["bounds"] = {
                "method": "affine_inverse",
                "scale": scale,
                "offset": offset,
            }
        return info

    # ------------------------------------------------------------------ #
    # Query execution

    def execute(self, query: Query | str) -> list[AqpResult] | dict[str, list[AqpResult]]:
        """Execute a query approximately.

        Returns a list of :class:`AqpResult` (one per SELECT aggregation) or,
        for GROUP BY queries, a dict mapping group label to such a list.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self._check_query(query)
        transformed = self._transform_predicate(query.predicate)
        if query.group_by is None:
            return [self._execute_single(agg, transformed, query) for agg in query.aggregations]
        transform = self.preprocessor[query.group_by]
        results: dict[str, list[AqpResult]] = {}
        for label, predicate in group_predicates(transform, transformed):
            group_results = [
                self._execute_single(agg, predicate, query, group=label)
                for agg in query.aggregations
            ]
            if self._group_count(group_results, predicate, query) > 0:
                results[label] = group_results
        return results

    def _group_count(
        self,
        group_results: list[AqpResult],
        predicate: Predicate,
        query: Query,
    ) -> float:
        """Estimated row count of one group (drives the empty-group filter).

        Reuses a COUNT aggregation from the SELECT list when there is one;
        otherwise estimates COUNT(*) over the group's predicate.
        """
        for result in group_results:
            if result.aggregation.func is AggregateFunction.COUNT:
                return result.value
        count = self._execute_single(
            Aggregation(func=AggregateFunction.COUNT, column=None), predicate, query
        )
        return count.value

    def execute_scalar(self, query: Query | str) -> AqpResult:
        """Execute a non-GROUP BY query and return the first aggregation's result."""
        results = self.execute(query)
        if isinstance(results, dict):
            raise ValueError("execute_scalar does not support GROUP BY queries")
        return results[0]

    # ------------------------------------------------------------------ #
    # Internals

    _RANGE_OPS = (ComparisonOp.LT, ComparisonOp.GT, ComparisonOp.LE, ComparisonOp.GE)

    def _check_query(self, query: Query) -> None:
        if query.table and query.table != self.table_name:
            # Accept any table name; warn-free because the engine serves one table.
            pass
        for column in query.columns:
            if column not in self.preprocessor:
                raise KeyError(f"unknown column {column!r} in query")
        for condition in predicate_conditions(query.predicate):
            transform = self.preprocessor[condition.column]
            if transform.is_categorical and condition.op in self._RANGE_OPS:
                # Categorical codes carry no order, so a range predicate would
                # silently match an arbitrary subset; reject it instead.  The
                # workload runner records this as an unsupported query.
                raise UnsupportedQueryError(
                    f"range predicate {condition.op.value!r} on categorical "
                    f"column {condition.column!r} is not supported"
                )
        for agg in query.aggregations:
            if agg.column is None:
                continue
            transform = self.preprocessor[agg.column]
            if transform.is_categorical and agg.func is not AggregateFunction.COUNT:
                raise ValueError(
                    f"{agg.func.value} over categorical column {agg.column!r} is not defined"
                )

    def _evaluator(self, column: str) -> PredicateEvaluator:
        if column not in self._evaluators:
            self._evaluators[column] = PredicateEvaluator(self.synopsis, column)
        return self._evaluators[column]

    def _transform_predicate(self, predicate: Predicate | None) -> Predicate | None:
        """Apply GreedyGD pre-processing to predicate literals (Fig. 7, §5.1)."""
        if predicate is None:
            return None
        if isinstance(predicate, Condition):
            transform = self.preprocessor[predicate.column]
            literal = transform.transform_value(predicate.literal)
            return Condition(column=predicate.column, op=predicate.op, literal=literal)
        return PredicateNode(
            op=predicate.op,
            children=[self._transform_predicate(child) for child in predicate.children],
        )

    def _aggregation_column(self, aggregation: Aggregation, query: Query) -> str:
        """Column whose 1-d histogram carries the weightings for this aggregation."""
        if aggregation.column is not None:
            return aggregation.column
        predicate_cols = predicate_columns(query.predicate)
        if predicate_cols:
            return predicate_cols[0]
        return self.synopsis.columns[0]

    def _execute_single(
        self,
        aggregation: Aggregation,
        predicate: Predicate | None,
        query: Query,
        group: str | None = None,
    ) -> AqpResult:
        column = self._aggregation_column(aggregation, query)
        evaluator = self._evaluator(column)
        weights = evaluator.weightings(predicate)
        hist = self.synopsis.histogram(column)
        pred_cols = predicate_columns(query.predicate)
        single_column = all(c == column for c in pred_cols) if pred_cols else True
        code_estimate = aggregate(
            aggregation.func,
            hist,
            weights,
            self.synopsis.sampling_ratio,
            self.synopsis.params.min_points,
            single_column=single_column,
        )
        estimate = self._inverse_transform(aggregation, column, code_estimate, weights)
        return AqpResult(aggregation=aggregation, estimate=estimate, group=group)

    def _inverse_transform(
        self,
        aggregation: Aggregation,
        column: str,
        estimate: AqpEstimate,
        weights,
    ) -> AqpEstimate:
        """Fig. 2 "Aggregation Transform": map results back to the original domain."""
        func = aggregation.func
        if func is AggregateFunction.COUNT:
            return estimate
        transform = self.preprocessor[column]
        if transform.is_categorical:
            return estimate
        scale = transform.scale
        offset = transform.offset
        if func in (AggregateFunction.AVG, AggregateFunction.MIN, AggregateFunction.MAX, AggregateFunction.MEDIAN):
            return AqpEstimate(
                value=estimate.value / scale + offset,
                lower=estimate.lower / scale + offset,
                upper=estimate.upper / scale + offset,
            )
        if func is AggregateFunction.VAR:
            factor = scale * scale
            return AqpEstimate(
                value=estimate.value / factor,
                lower=estimate.lower / factor,
                upper=estimate.upper / factor,
            )
        if func is AggregateFunction.SUM:
            rho = self.synopsis.sampling_ratio
            count_value = weights.estimate.sum() / rho
            count_lower = weights.lower.sum() / rho
            count_upper = weights.upper.sum() / rho
            value = estimate.value / scale + offset * count_value
            if offset >= 0:
                lower = estimate.lower / scale + offset * count_lower
                upper = estimate.upper / scale + offset * count_upper
            else:
                lower = estimate.lower / scale + offset * count_upper
                upper = estimate.upper / scale + offset * count_lower
            return AqpEstimate(value=value, lower=lower, upper=upper)
        raise ValueError(f"unsupported aggregation function {func}")  # pragma: no cover
