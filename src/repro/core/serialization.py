"""Compact binary storage encoding of a PairwiseHist synopsis (§4.3, Fig. 6).

Only the information that cannot be re-derived is persisted: construction
parameters, bin edges, per-bin extrema and unique counts, and the bin
counts.  Bin midpoints, weighted-centre bounds, parent maps and marginal
counts are recomputed at load time.  2-d bin-count matrices are stored
either densely (fixed ``l_h`` bits per count) or sparsely (Golomb-coded
index gaps + counts), whichever is smaller — exactly the choice shown in
Fig. 6.
"""

from __future__ import annotations

import struct

import numpy as np

from ..storage.codec import (
    frame_blobs,
    pack_short_string,
    unframe_blobs,
    unpack_short_string,
)
from ..util.bitstream import BitReader, BitWriter
from .centre_bounds import weighted_centre_bounds
from .golomb import encode_value, rice_parameter
from .histogram1d import Histogram1D, bin_indices
from .histogram2d import AxisMetadata, Histogram2D
from .params import PairwiseHistParams
from .synopsis import PairwiseHist

_MAGIC = b"PWH1"

#: Exact-variant magic: counts and unique arrays kept as float64 so a
#: *merged* synopsis — whose projected counts are fractional — round-trips
#: bit-exactly.  Used by snapshot checkpoints to persist the queryable
#: merged accelerator; the per-partition payloads stay in the compact
#: Fig. 6 integer format.
_EXACT_MAGIC = b"PWHX"

#: Counts-block flag for raw float64 storage (exact variant only; the
#: Fig. 6 flags are 0 = dense, 1 = sparse Golomb).
_COUNTS_RAW = 2


# --------------------------------------------------------------------------- #
# Low-level helpers


def _pack_array(values: np.ndarray, fmt: str) -> bytes:
    values = np.asarray(values)
    return struct.pack(f"<I{len(values)}{fmt}", len(values), *values.tolist())


def _unpack_array(buffer: memoryview, offset: int, fmt: str, dtype) -> tuple[np.ndarray, int]:
    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    size = struct.calcsize(f"<{count}{fmt}")
    values = np.array(struct.unpack_from(f"<{count}{fmt}", buffer, offset), dtype=dtype)
    return values, offset + size


# 2-byte-length string framing, shared with every other binary format
# (storage.codec is the single framing source of truth).
_pack_string = pack_short_string
_unpack_string = unpack_short_string


def _count_bit_width(counts: np.ndarray) -> int:
    """``l_h`` — bits per bin count (Eq. 13)."""
    maximum = int(counts.max()) if counts.size else 0
    return max(1, int(np.ceil(np.log2(1 + maximum))) if maximum > 0 else 1)


def _pack_counts_dense(counts: np.ndarray, width: int) -> bytes:
    writer = BitWriter()
    writer.write_bits_array(counts.ravel().astype(np.int64), width)
    return writer.getvalue()


def _pack_counts_sparse(counts: np.ndarray, width: int) -> bytes:
    flat = counts.ravel()
    indices = np.flatnonzero(flat)
    gaps = np.diff(np.concatenate([[0], indices + 1])) - 1 if indices.size else np.array([], dtype=int)
    k = rice_parameter(gaps)
    writer = BitWriter()
    writer.write_bits(k, 6)
    for gap, index in zip(gaps, indices):
        encode_value(writer, int(gap), k)
        writer.write_bits(int(flat[index]), width)
    return writer.getvalue()


def _unpack_counts_dense(payload: bytes, shape: tuple[int, ...], width: int) -> np.ndarray:
    reader = BitReader(payload)
    total = int(np.prod(shape))
    values = reader.read_bits_array(total, width).astype(float)
    return values.reshape(shape)


def _unpack_counts_sparse(
    payload: bytes, shape: tuple[int, ...], width: int, non_zero: int
) -> np.ndarray:
    """Decode a sparse (Golomb-gap) count block, mostly vectorized.

    The stream interleaves variable-length Rice codes with fixed-width
    count fields, so full vectorization is impossible — but the expensive
    parts are: unary terminators come from one precomputed zero-position
    index (binary search per record instead of window scans), and every
    remainder / count field is gathered and bit-shifted in two batched
    numpy operations at the end.  This is the warm-restart hot path: a
    snapshot load decodes one such block per pairwise histogram per
    partition.
    """
    reader = BitReader(payload)
    k = reader.read_bits(6)
    flat = np.zeros(int(np.prod(shape)))
    if non_zero == 0:
        return flat.reshape(shape)
    bits = reader._bits
    zeros = np.flatnonzero(bits == 0)
    fixed = k + width
    end = len(bits)
    bounded = np.append(zeros, end)
    # next_zero[p] = position of the first zero bit at or after p (sentinel
    # ``end`` past the last zero), so the record walk below is plain
    # integer arithmetic on a Python list.  The per-bit table is only
    # worth (and bounded in) memory when the payload is small relative to
    # the record count; for sparse-record/large-payload blocks fall back
    # to one binary search per record.
    use_table = end <= max(4096, 64 * non_zero)
    if use_table:
        next_zero = bounded[
            np.searchsorted(zeros, np.arange(end), side="left")
        ].tolist()
    terminators = np.empty(non_zero, dtype=np.int64)
    quotients = np.empty(non_zero, dtype=np.int64)
    position = reader.position
    for i in range(non_zero):
        if position >= end:
            raise EOFError("bit stream exhausted")
        if use_table:
            terminator = next_zero[position]
        else:
            terminator = int(bounded[np.searchsorted(zeros, position, side="left")])
        if terminator >= end:
            raise EOFError("bit stream exhausted")
        terminators[i] = terminator
        quotients[i] = terminator - position
        position = terminator + 1 + fixed
    if position > end:
        raise EOFError("bit stream exhausted")
    remainders = np.zeros(non_zero, dtype=np.int64)
    if fixed:
        field_index = terminators[:, None] + 1 + np.arange(fixed)
        fields = bits[field_index].astype(np.int64)
        if k:
            shifts = np.arange(k - 1, -1, -1, dtype=np.int64)
            remainders = (fields[:, :k] << shifts).sum(axis=1)
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
        counts = (fields[:, k:] << shifts).sum(axis=1)
    else:
        counts = np.zeros(non_zero, dtype=np.int64)
    gaps = (quotients << k) | remainders
    flat[np.cumsum(gaps + 1) - 1] = counts
    return flat.reshape(shape)


def _encode_counts(
    counts: np.ndarray, force_dense: bool = False, exact: bool = False
) -> bytes:
    """Dense-or-sparse bin-count block, whichever is smaller (Fig. 6, right).

    Counts are stored as integers; merged (partitioned) synopses carry
    fractional counts from the projection step, so they are rounded — not
    truncated — here, keeping the encoding unbiased.  With ``exact=True``
    fractional counts are stored as raw float64 instead (flag 2), so the
    block round-trips bit-exactly; integral counts still take the compact
    integer path, which is already lossless for them.

    ``force_dense=True`` disables the sparse (Golomb) path; it exists for the
    storage-encoding ablation benchmark.
    """
    rounded = np.rint(counts)
    if exact and not np.array_equal(rounded, counts):
        payload = np.ascontiguousarray(counts, dtype="<f8").tobytes()
        header = struct.pack("<BBI", 0, _COUNTS_RAW, int(np.count_nonzero(counts)))
        return header + struct.pack("<I", len(payload)) + payload
    counts = rounded
    width = _count_bit_width(counts)
    dense = _pack_counts_dense(counts, width)
    sparse = _pack_counts_sparse(counts, width)
    non_zero = int(np.count_nonzero(counts))
    if len(sparse) < len(dense) and not force_dense:
        header = struct.pack("<BBI", width, 1, non_zero)
        payload = sparse
    else:
        header = struct.pack("<BBI", width, 0, non_zero)
        payload = dense
    return header + struct.pack("<I", len(payload)) + payload


def _decode_counts(buffer: memoryview, offset: int, shape: tuple[int, ...]) -> tuple[np.ndarray, int]:
    width, sparse_flag, non_zero = struct.unpack_from("<BBI", buffer, offset)
    offset += 6
    (length,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    payload = bytes(buffer[offset : offset + length])
    offset += length
    if sparse_flag == _COUNTS_RAW:
        counts = np.frombuffer(payload, dtype="<f8").reshape(shape).copy()
    elif sparse_flag:
        counts = _unpack_counts_sparse(payload, shape, width, non_zero)
    else:
        counts = _unpack_counts_dense(payload, shape, width)
    return counts, offset


# --------------------------------------------------------------------------- #
# Histogram blocks


def _encode_hist1d(
    hist: Histogram1D, force_dense: bool = False, exact: bool = False
) -> bytes:
    parts = [
        _pack_string(hist.column),
        _pack_array(hist.edges, "d"),
        _pack_array(hist.v_minus, "d"),
        _pack_array(hist.v_plus, "d"),
        # Merged histograms carry fractional unique counts (projection);
        # the exact variant must not truncate them to integers.
        _pack_array(hist.unique, "d")
        if exact
        else _pack_array(hist.unique.astype(np.uint32), "I"),
        _encode_counts(hist.counts, force_dense, exact),
    ]
    return b"".join(parts)


def _decode_hist1d(
    buffer: memoryview, offset: int, params: PairwiseHistParams, exact: bool = False
) -> tuple[Histogram1D, int]:
    column, offset = _unpack_string(buffer, offset)
    edges, offset = _unpack_array(buffer, offset, "d", float)
    v_minus, offset = _unpack_array(buffer, offset, "d", float)
    v_plus, offset = _unpack_array(buffer, offset, "d", float)
    unique, offset = _unpack_array(buffer, offset, "d" if exact else "I", float)
    counts, offset = _decode_counts(buffer, offset, (len(edges) - 1,))
    hist = Histogram1D(
        column=column,
        edges=edges,
        counts=counts,
        v_minus=v_minus,
        v_plus=v_plus,
        unique=unique,
    )
    hist.centre_lower, hist.centre_upper = weighted_centre_bounds(
        hist.counts, hist.v_minus, hist.v_plus, hist.unique,
        params.min_points, params.alpha, params.min_spacing,
    )
    return hist, offset


def _encode_axis(axis: AxisMetadata, exact: bool = False) -> bytes:
    parts = [
        _pack_string(axis.column),
        _pack_array(axis.edges, "d"),
        _pack_array(axis.v_minus, "d"),
        _pack_array(axis.v_plus, "d"),
        _pack_array(axis.unique, "d")
        if exact
        else _pack_array(axis.unique.astype(np.uint32), "I"),
    ]
    return b"".join(parts)


def _decode_axis(
    buffer: memoryview, offset: int, parent_hist: Histogram1D, exact: bool = False
) -> tuple[AxisMetadata, int]:
    column, offset = _unpack_string(buffer, offset)
    edges, offset = _unpack_array(buffer, offset, "d", float)
    v_minus, offset = _unpack_array(buffer, offset, "d", float)
    v_plus, offset = _unpack_array(buffer, offset, "d", float)
    unique, offset = _unpack_array(buffer, offset, "d" if exact else "I", float)
    midpoints = (edges[:-1] + edges[1:]) / 2.0
    parent = bin_indices(parent_hist.edges, midpoints)
    axis = AxisMetadata(
        column=column,
        edges=edges,
        v_minus=v_minus,
        v_plus=v_plus,
        unique=unique,
        marginal_counts=np.zeros(len(edges) - 1),
        parent=parent,
    )
    return axis, offset


# --------------------------------------------------------------------------- #
# Public API


def serialize(
    synopsis: PairwiseHist, force_dense: bool = False, exact: bool = False
) -> bytes:
    """Encode a synopsis to bytes (the "Overall Storage Configuration" of Fig. 6).

    ``force_dense=True`` stores every bin-count matrix densely instead of
    letting the encoder pick dense vs sparse per histogram (ablation only).

    ``exact=True`` selects the float-preserving variant (magic ``PWHX``):
    fractional counts and unique arrays — which only *merged* synopses
    carry — survive the round trip bit-exactly instead of being rounded.
    Snapshot checkpoints use it to persist the merged query accelerator so
    a warm restart skips re-merging every partition.
    """
    params = synopsis.params
    parts: list[bytes] = [_EXACT_MAGIC if exact else _MAGIC]
    parts.append(
        struct.pack(
            "<QQIdIH",
            synopsis.population_rows,
            synopsis.sample_rows,
            params.min_points,
            params.alpha,
            params.seed,
            synopsis.num_columns,
        )
    )
    for column in synopsis.columns:
        parts.append(_pack_string(column))
    for column in synopsis.columns:
        parts.append(_encode_hist1d(synopsis.hist1d[column], force_dense, exact))
    parts.append(struct.pack("<I", len(synopsis.hist2d)))
    for (col_a, col_b), hist in synopsis.hist2d.items():
        parts.append(_pack_string(col_a))
        parts.append(_pack_string(col_b))
        parts.append(_encode_axis(hist.row, exact))
        parts.append(_encode_axis(hist.col, exact))
        parts.append(_encode_counts(hist.counts, force_dense, exact))
    return b"".join(parts)


def deserialize(payload: bytes) -> PairwiseHist:
    """Decode bytes produced by :func:`serialize` back into a synopsis."""
    buffer = memoryview(payload)
    magic = bytes(buffer[:4])
    if magic not in (_MAGIC, _EXACT_MAGIC):
        raise ValueError("not a PairwiseHist payload (bad magic)")
    exact = magic == _EXACT_MAGIC
    offset = 4
    population, sample, min_points, alpha, seed, num_columns = struct.unpack_from(
        "<QQIdIH", buffer, offset
    )
    offset += struct.calcsize("<QQIdIH")
    params = PairwiseHistParams(
        sample_size=int(sample), min_points=int(min_points), alpha=float(alpha), seed=int(seed)
    )
    columns: list[str] = []
    for _ in range(num_columns):
        column, offset = _unpack_string(buffer, offset)
        columns.append(column)
    synopsis = PairwiseHist(
        params=params,
        columns=columns,
        population_rows=int(population),
        sample_rows=int(sample),
    )
    for _ in range(num_columns):
        hist, offset = _decode_hist1d(buffer, offset, params, exact)
        synopsis.hist1d[hist.column] = hist
    (num_pairs,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    for _ in range(num_pairs):
        col_a, offset = _unpack_string(buffer, offset)
        col_b, offset = _unpack_string(buffer, offset)
        row_axis, offset = _decode_axis(buffer, offset, synopsis.hist1d[col_a], exact)
        col_axis, offset = _decode_axis(buffer, offset, synopsis.hist1d[col_b], exact)
        counts, offset = _decode_counts(buffer, offset, (row_axis.num_bins, col_axis.num_bins))
        row_axis.marginal_counts = counts.sum(axis=1)
        col_axis.marginal_counts = counts.sum(axis=0)
        synopsis.hist2d[(col_a, col_b)] = Histogram2D(row=row_axis, col=col_axis, counts=counts)
    return synopsis


def synopsis_size_bytes(synopsis: PairwiseHist, force_dense: bool = False) -> int:
    """Size of the serialized synopsis in bytes (the Fig. 8 / Fig. 11 metric)."""
    return len(serialize(synopsis, force_dense))


# --------------------------------------------------------------------------- #
# Construction parameters (full fidelity — the catalog needs every knob)

_PARAMS_SENTINEL = -1


def serialize_params(params: PairwiseHistParams) -> bytes:
    """Encode construction parameters losslessly (unlike the synopsis header,
    which persists only the fields needed to recompute centre bounds)."""
    return struct.pack(
        "<qqddqqqq",
        _PARAMS_SENTINEL if params.sample_size is None else params.sample_size,
        params.min_points,
        params.alpha,
        params.min_spacing,
        _PARAMS_SENTINEL if params.max_initial_bins is None else params.max_initial_bins,
        params.max_refine_depth,
        params.seed,
        _PARAMS_SENTINEL if params.max_merged_cells is None else params.max_merged_cells,
    )


def deserialize_params(buffer, offset: int = 0) -> tuple[PairwiseHistParams, int]:
    """Decode bytes produced by :func:`serialize_params`; returns the params
    and the offset just past them."""
    fmt = "<qqddqqqq"
    sample, min_points, alpha, min_spacing, max_bins, depth, seed, max_cells = (
        struct.unpack_from(fmt, buffer, offset)
    )
    params = PairwiseHistParams(
        sample_size=None if sample == _PARAMS_SENTINEL else int(sample),
        min_points=int(min_points),
        alpha=float(alpha),
        min_spacing=float(min_spacing),
        max_initial_bins=None if max_bins == _PARAMS_SENTINEL else int(max_bins),
        max_refine_depth=int(depth),
        seed=int(seed),
        max_merged_cells=None if max_cells == _PARAMS_SENTINEL else int(max_cells),
    )
    return params, offset + struct.calcsize(fmt)


# --------------------------------------------------------------------------- #
# Catalog / manifest framing (snapshot checkpoints)

_CATALOG_MAGIC = b"PWHC"
_MANIFEST_MAGIC = b"PWHM"


def serialize_catalog(entries: list[bytes]) -> bytes:
    """Frame per-table catalog blobs into one snapshot CATALOG payload."""
    return _CATALOG_MAGIC + frame_blobs(entries)


def deserialize_catalog(payload: bytes) -> list[bytes]:
    """Decode bytes produced by :func:`serialize_catalog`."""
    buffer = memoryview(payload)
    if bytes(buffer[:4]) != _CATALOG_MAGIC:
        raise ValueError("not a catalog payload (bad magic)")
    entries, _ = unframe_blobs(buffer, 4)
    return entries


def serialize_manifest(checkpoint_lsn: int, files: list[tuple[str, int, int]]) -> bytes:
    """Frame a snapshot manifest: checkpoint LSN + (name, size, crc32) per file.

    The manifest is written last inside the snapshot's temp directory, so
    its presence (plus every listed file matching its recorded size and
    checksum) is what makes a snapshot *valid* to the recovery path.
    """
    parts = [_MANIFEST_MAGIC, struct.pack("<QI", checkpoint_lsn, len(files))]
    for name, size, crc in files:
        parts.append(_pack_string(name))
        parts.append(struct.pack("<QI", size, crc))
    return b"".join(parts)


def deserialize_manifest(payload: bytes) -> tuple[int, list[tuple[str, int, int]]]:
    """Decode bytes produced by :func:`serialize_manifest`."""
    buffer = memoryview(payload)
    if bytes(buffer[:4]) != _MANIFEST_MAGIC:
        raise ValueError("not a manifest payload (bad magic)")
    checkpoint_lsn, count = struct.unpack_from("<QI", buffer, 4)
    offset = 4 + struct.calcsize("<QI")
    files: list[tuple[str, int, int]] = []
    for _ in range(count):
        name, offset = _unpack_string(buffer, offset)
        size, crc = struct.unpack_from("<QI", buffer, offset)
        offset += struct.calcsize("<QI")
        files.append((name, int(size), int(crc)))
    return int(checkpoint_lsn), files


# --------------------------------------------------------------------------- #
# Partitioned synopses

_PARTITIONED_MAGIC = b"PWHP"


def serialize_partitioned(
    synopses: list[PairwiseHist], force_dense: bool = False, cache: bool = False
) -> bytes:
    """Encode a sequence of per-partition synopses as one framed payload.

    Each partition keeps its own independent :func:`serialize` blob so a
    single partition can be replaced after an incremental append without
    re-encoding the others; the merged, queryable synopsis is rebuilt from
    the parts at load time via :meth:`PairwiseHist.merge`.

    ``cache=True`` memoizes each synopsis's serialized blob on the object
    (published synopses are immutable — an ingest replaces the object).
    Incremental checkpoints pass it so the per-table synopsis payload
    costs one encode per *changed* partition, not per partition.
    """
    if isinstance(synopses, LazyPartitionSynopses) and not synopses.hydrated:
        # Never-decoded synopses round-trip as their original payload —
        # the encode is skipped entirely, byte-identity is trivial.
        return synopses.payload
    if not cache:
        parts = [serialize(synopsis, force_dense) for synopsis in synopses]
    else:
        parts = []
        for synopsis in synopses:
            cached = getattr(synopsis, "_pwhp_blob", None)
            if cached is None or cached[0] != force_dense:
                cached = (force_dense, serialize(synopsis, force_dense))
                synopsis._pwhp_blob = cached
            parts.append(cached[1])
    return _PARTITIONED_MAGIC + frame_blobs(parts)


def deserialize_partitioned(payload: bytes) -> list[PairwiseHist]:
    """Decode bytes produced by :func:`serialize_partitioned`."""
    buffer = memoryview(payload)
    if bytes(buffer[:4]) != _PARTITIONED_MAGIC:
        raise ValueError("not a partitioned PairwiseHist payload (bad magic)")
    blobs, _ = unframe_blobs(buffer, 4)
    return [deserialize(blob) for blob in blobs]


class LazyPartitionSynopses:
    """A partitioned (``PWHP``) payload that decodes on first real use.

    Snapshot loading hands these to the recovered tables instead of eagerly
    deserializing every per-partition synopsis: queries only need the
    *merged* synopsis (persisted separately in the exact ``PWHX`` form), so
    a query-only restart never pays the per-partition decode.  The first
    ingest touch — or anything else that iterates / indexes the sequence —
    hydrates it once, under a lock so concurrent readers see one decode.

    :func:`serialize_partitioned` short-circuits an unhydrated instance to
    its original payload, so checkpointing a recovered-but-untouched table
    re-writes the identical bytes without a decode/encode round trip.
    """

    def __init__(self, payload: bytes) -> None:
        buffer = memoryview(payload)
        if bytes(buffer[:4]) != _PARTITIONED_MAGIC:
            raise ValueError("not a partitioned PairwiseHist payload (bad magic)")
        self.payload = bytes(payload)
        (self._count,) = struct.unpack_from("<I", buffer, 4)
        self._items: list[PairwiseHist] | None = None
        import threading

        self._lock = threading.Lock()

    @property
    def hydrated(self) -> bool:
        return self._items is not None

    def _hydrate(self) -> list[PairwiseHist]:
        with self._lock:
            if self._items is None:
                self._items = deserialize_partitioned(self.payload)
            return self._items

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self._hydrate())

    def __getitem__(self, index):
        return self._hydrate()[index]
