"""Bin weightings for arbitrary AND/OR predicate trees (§5.3, Eq. 24–29).

Given a query aggregating on column ``i`` with predicate ``P``, the bin
weightings ``w(i)`` estimate, for every bin of the 1-d histogram of ``i``,
how many sampled points in the bin satisfy ``P``.  Each predicate condition
on a column ``j != i`` is translated into per-bin probabilities through the
pairwise histogram ``H(ij)`` (Eq. 27); conditions on ``i`` itself use the
1-d coverage directly; AND / OR trees combine probabilities under the
conditional-independence assumption (Eq. 28); and same-column condition
groups are consolidated *before* the transformation ("delayed
transformation", Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..sql.ast import ComparisonOp, Condition, LogicalOp, Predicate, PredicateNode
from .coverage import (
    CoverageResult,
    condition_coverage,
    consolidate_and,
    consolidate_or,
    coverage_bounds,
    interval_coverage,
)
from .synopsis import PairwiseHist

#: z-value of the two-sided 98 % confidence interval used by Eq. 29.
Z_98 = float(stats.norm.ppf(0.99))


@dataclass
class WeightingResult:
    """Estimated weightings and their bounds over the aggregation column's bins."""

    estimate: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        self.estimate = np.asarray(self.estimate, dtype=float)
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)

    @property
    def total(self) -> float:
        """``||w||_1`` — estimated number of sampled rows matching the predicate."""
        return float(self.estimate.sum())

    @property
    def is_empty(self) -> bool:
        return self.total <= 0.0


@dataclass
class _Probabilities:
    """Per-bin probability that a (sub-)predicate holds, with bounds."""

    estimate: np.ndarray
    lower: np.ndarray
    upper: np.ndarray


class PredicateEvaluator:
    """Computes bin weightings for one aggregation column of a synopsis."""

    def __init__(self, synopsis: PairwiseHist, aggregation_column: str) -> None:
        self._synopsis = synopsis
        self._column = aggregation_column
        self._hist = synopsis.histogram(aggregation_column)

    # ------------------------------------------------------------------ #

    @property
    def aggregation_column(self) -> str:
        return self._column

    def weightings(self, predicate: Predicate | None) -> WeightingResult:
        """Eq. 24–29: weightings (and bounds) for an arbitrary predicate tree."""
        counts = self._hist.counts
        if predicate is None:
            return WeightingResult(counts.copy(), counts.copy(), counts.copy())
        probabilities = self._evaluate(predicate)
        estimate = counts * probabilities.estimate
        lower = counts * probabilities.lower
        upper = counts * probabilities.upper
        lower, upper = self._widen_for_sampling(counts, lower, upper)
        lower = np.minimum(lower, estimate)
        upper = np.maximum(upper, estimate)
        return WeightingResult(estimate, lower, upper)

    # ------------------------------------------------------------------ #
    # Predicate tree evaluation

    def _evaluate(self, predicate: Predicate) -> _Probabilities:
        if isinstance(predicate, Condition):
            return self._leaf_group(predicate.column, [predicate], LogicalOp.AND)
        if not isinstance(predicate, PredicateNode):
            raise TypeError(f"unsupported predicate node type {type(predicate)!r}")
        parts: list[_Probabilities] = []
        leaf_groups: dict[str, list[Condition]] = {}
        for child in predicate.children:
            if isinstance(child, Condition):
                leaf_groups.setdefault(child.column, []).append(child)
            else:
                parts.append(self._evaluate(child))
        for column, conditions in leaf_groups.items():
            parts.append(self._leaf_group(column, conditions, predicate.op))
        return self._combine(parts, predicate.op)

    def _combine(self, parts: list[_Probabilities], op: LogicalOp) -> _Probabilities:
        if len(parts) == 1:
            return parts[0]
        if op is LogicalOp.AND:
            estimate = np.prod([p.estimate for p in parts], axis=0)
            lower = np.prod([p.lower for p in parts], axis=0)
            upper = np.prod([p.upper for p in parts], axis=0)
        else:
            estimate = 1.0 - np.prod([1.0 - p.estimate for p in parts], axis=0)
            lower = 1.0 - np.prod([1.0 - p.lower for p in parts], axis=0)
            upper = 1.0 - np.prod([1.0 - p.upper for p in parts], axis=0)
        return _Probabilities(
            np.clip(estimate, 0.0, 1.0), np.clip(lower, 0.0, 1.0), np.clip(upper, 0.0, 1.0)
        )

    # ------------------------------------------------------------------ #
    # Leaves

    def _leaf_group(
        self, column: str, conditions: list[Condition], op: LogicalOp
    ) -> _Probabilities:
        """Coverage of same-column conditions, consolidated then transformed."""
        if column == self._column:
            hist = self._hist
            coverage = self._group_coverage(
                conditions, op, hist.v_minus, hist.v_plus, hist.unique, hist.counts
            )
            return _Probabilities(coverage.estimate, coverage.lower, coverage.upper)

        if self._synopsis.has_pair(self._column, column):
            pair = self._synopsis.pair(self._column, column)
            counts, agg_axis, pred_axis = pair.oriented(self._column)
            coverage = self._group_coverage(
                conditions, op, pred_axis.v_minus, pred_axis.v_plus,
                pred_axis.unique, pred_axis.marginal_counts,
            )
            return self._transform_through_pair(counts, agg_axis.parent, coverage)

        # Fallback when the pair histogram was not built: assume full
        # independence from the aggregation column and use the marginal
        # selectivity from the predicate column's own 1-d histogram.
        hist_j = self._synopsis.histogram(column)
        coverage = self._group_coverage(
            conditions, op, hist_j.v_minus, hist_j.v_plus, hist_j.unique, hist_j.counts
        )
        total = hist_j.total_count
        if total <= 0:
            zeros = np.zeros(self._hist.num_bins)
            return _Probabilities(zeros, zeros.copy(), zeros.copy())
        scalar = float((coverage.estimate * hist_j.counts).sum() / total)
        scalar_lo = float((coverage.lower * hist_j.counts).sum() / total)
        scalar_hi = float((coverage.upper * hist_j.counts).sum() / total)
        ones = np.ones(self._hist.num_bins)
        return _Probabilities(ones * scalar, ones * scalar_lo, ones * scalar_hi)

    def _group_coverage(
        self,
        conditions: list[Condition],
        op: LogicalOp,
        v_minus: np.ndarray,
        v_plus: np.ndarray,
        unique: np.ndarray,
        counts: np.ndarray,
    ) -> CoverageResult:
        """Coverage of a same-column condition group over one set of bins.

        AND-connected range/equality groups are consolidated exactly as one
        interval (delayed transformation); everything else falls back to the
        element-wise consolidation rules.
        """
        params = self._synopsis.params
        if len(conditions) > 1 and op is LogicalOp.AND and all(
            cond.op is not ComparisonOp.NE for cond in conditions
        ):
            lower_literal, upper_literal = -np.inf, np.inf
            for cond in conditions:
                literal = float(cond.literal)
                if cond.op in (ComparisonOp.GT, ComparisonOp.GE):
                    lower_literal = max(lower_literal, literal)
                elif cond.op in (ComparisonOp.LT, ComparisonOp.LE):
                    upper_literal = min(upper_literal, literal)
                else:  # EQ pins the interval to a point
                    lower_literal = max(lower_literal, literal)
                    upper_literal = min(upper_literal, literal)
            beta = interval_coverage(lower_literal, upper_literal, v_minus, v_plus, unique)
            lower, upper = coverage_bounds(beta, counts, unique, params.min_points, params.alpha)
            return CoverageResult(beta, lower, upper)
        coverages = [
            condition_coverage(
                cond.op, float(cond.literal), v_minus, v_plus, unique, counts,
                params.min_points, params.alpha,
            )
            for cond in conditions
        ]
        if len(coverages) == 1:
            return coverages[0]
        if op is LogicalOp.AND:
            return consolidate_and(coverages)
        return consolidate_or(coverages)

    def _transform_through_pair(
        self, counts: np.ndarray, parent: np.ndarray, coverage: CoverageResult
    ) -> _Probabilities:
        """Eq. 27: fold ``H(ij) beta(j)`` back onto the 1-d bins of the aggregation column."""
        k = self._hist.num_bins
        hist_counts = self._hist.counts

        def fold(beta: np.ndarray) -> np.ndarray:
            weighted = counts @ beta
            folded = np.bincount(parent, weights=weighted, minlength=k)[:k]
            with np.errstate(divide="ignore", invalid="ignore"):
                probs = np.where(hist_counts > 0, folded / hist_counts, 0.0)
            return np.clip(probs, 0.0, 1.0)

        return _Probabilities(fold(coverage.estimate), fold(coverage.lower), fold(coverage.upper))

    # ------------------------------------------------------------------ #
    # Sampling widening (Eq. 29)

    def _widen_for_sampling(
        self, counts: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        population = self._synopsis.population_rows
        sample = self._synopsis.sample_rows
        if population <= sample or population <= 1:
            return lower, upper
        correction = (population - sample) / (population - 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            beta_lower = np.where(counts > 0, lower / counts, 0.0)
            beta_upper = np.where(counts > 0, upper / counts, 0.0)
            spread_lower = Z_98 * np.sqrt(
                np.clip(beta_lower * (1.0 - beta_lower), 0.0, None) / np.maximum(counts, 1.0) * correction
            )
            spread_upper = Z_98 * np.sqrt(
                np.clip(beta_upper * (1.0 - beta_upper), 0.0, None) / np.maximum(counts, 1.0) * correction
            )
        widened_lower = np.clip(beta_lower - spread_lower, 0.0, 1.0) * counts
        widened_upper = np.clip(beta_upper + spread_upper, 0.0, 1.0) * counts
        return widened_lower, widened_upper
