"""One-dimensional PairwiseHist histograms and their per-bin metadata (§4)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .centre_bounds import weighted_centre_bounds


def bin_indices(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Map values to bin indices for half-open bins ``[e_t, e_{t+1})``.

    The final bin is closed on the right, matching ``numpy.histogram``.
    Values outside the edge range are clipped into the first / last bin.
    """
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.clip(idx, 0, len(edges) - 2)


def projection_matrix(
    src_edges: np.ndarray,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    union_edges: np.ndarray,
) -> np.ndarray:
    """Row-stochastic matrix redistributing source bins onto a finer grid.

    ``union_edges`` must contain every source edge (it is the union of the
    edge sets being merged), so each source bin maps onto a contiguous run
    of union bins.  Mass is spread proportionally to each union bin's
    overlap with the source bin's occupied interval ``[v-, v+]`` — the same
    uniformity assumption PairwiseHist uses for partial bin coverage.
    Degenerate bins (single value, or no overlap information) put all mass
    in the union bin containing ``v-``.
    """
    k_src = len(src_edges) - 1
    k_union = len(union_edges) - 1
    matrix = np.zeros((k_src, k_union))
    positions = np.searchsorted(union_edges, src_edges)
    lo = positions[:-1]
    hi = np.maximum(positions[1:], lo + 1)
    seg_counts = hi - lo
    # Flattened (source bin, union bin) index pairs for every overlap segment.
    rows = np.repeat(np.arange(k_src), seg_counts)
    offsets = np.arange(len(rows)) - np.repeat(np.cumsum(seg_counts) - seg_counts, seg_counts)
    cols = lo[rows] + offsets
    support_lo = np.maximum(v_minus, src_edges[:-1])
    support_hi = np.minimum(v_plus, src_edges[1:])
    widths = np.clip(
        np.minimum(union_edges[cols + 1], support_hi[rows])
        - np.maximum(union_edges[cols], support_lo[rows]),
        0.0,
        None,
    )
    totals = np.bincount(rows, weights=widths, minlength=k_src)
    valid = totals[rows] > 0
    matrix[rows[valid], cols[valid]] = widths[valid] / totals[rows[valid]]
    # Degenerate bins (single value or no overlap information): all mass to
    # the union bin containing the support's lower end.
    degenerate = np.flatnonzero(totals <= 0)
    if degenerate.size:
        targets = np.clip(
            np.searchsorted(union_edges, support_lo[degenerate], side="right") - 1,
            lo[degenerate],
            hi[degenerate] - 1,
        )
        matrix[degenerate, targets] = 1.0
    return matrix


def distinct_capacity(edges: np.ndarray, min_spacing: float = 1.0) -> np.ndarray:
    """Maximum distinct values each bin can hold on a ``min_spacing`` grid.

    The compressed domain is integer-valued (spacing ``mu``), so a bin
    ``[e_t, e_{t+1})`` holds at most the number of grid points inside it;
    the final bin is closed on the right.  Used to cap merged unique
    counts, which otherwise drift above what a narrow bin can contain and
    skew equality-predicate coverage (``count / u``).
    """
    lo = np.ceil(edges[:-1] / min_spacing)
    hi = np.ceil(edges[1:] / min_spacing) - 1.0
    capacity = hi - lo + 1.0
    capacity[-1] = np.floor(edges[-1] / min_spacing) - lo[-1] + 1.0
    return np.maximum(capacity, 1.0)


def project_extrema(
    matrix: np.ndarray,
    counts: np.ndarray,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    union_edges: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-union-bin value extrema implied by projecting source bins.

    A source bin's extrema are clipped to each union bin it contributes
    mass to; union bins receiving nothing keep ``(+inf, -inf)`` so callers
    can combine several projections with ``minimum`` / ``maximum``.
    """
    k_union = len(union_edges) - 1
    vmin = np.full(k_union, np.inf)
    vmax = np.full(k_union, -np.inf)
    src, tgt = np.nonzero(matrix)
    occupied = counts[src] > 0
    src, tgt = src[occupied], tgt[occupied]
    if src.size:
        np.minimum.at(vmin, tgt, np.maximum(v_minus[src], union_edges[tgt]))
        np.maximum.at(vmax, tgt, np.minimum(v_plus[src], union_edges[tgt + 1]))
    return vmin, vmax


@dataclass
class Histogram1D:
    """One-dimensional histogram with PairwiseHist bin metadata.

    Attributes
    ----------
    column:
        Name of the column the histogram summarises.
    edges:
        Bin edges, length ``k + 1`` (``e`` in the paper).
    counts:
        Bin counts, length ``k`` (the diagonal of ``H(i)``).
    v_minus, v_plus:
        Minimum / maximum actual data value in each bin.
    unique:
        Number of unique values in each bin (``u``).
    centre_lower, centre_upper:
        Bounds on the weighted centre of each bin (Eq. 10).
    """

    column: str
    edges: np.ndarray
    counts: np.ndarray
    v_minus: np.ndarray
    v_plus: np.ndarray
    unique: np.ndarray
    centre_lower: np.ndarray = field(default=None)  # type: ignore[assignment]
    centre_upper: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=float)
        self.counts = np.asarray(self.counts, dtype=float)
        self.v_minus = np.asarray(self.v_minus, dtype=float)
        self.v_plus = np.asarray(self.v_plus, dtype=float)
        self.unique = np.asarray(self.unique, dtype=float)
        k = self.num_bins
        for name in ("counts", "v_minus", "v_plus", "unique"):
            if len(getattr(self, name)) != k:
                raise ValueError(f"{name} must have length {k} to match the edges")
        if self.centre_lower is None or self.centre_upper is None:
            self.centre_lower = self.v_minus.copy()
            self.centre_upper = self.v_plus.copy()
        else:
            self.centre_lower = np.asarray(self.centre_lower, dtype=float)
            self.centre_upper = np.asarray(self.centre_upper, dtype=float)

    # ------------------------------------------------------------------ #

    @property
    def num_bins(self) -> int:
        """``k`` — number of bins."""
        return len(self.edges) - 1

    @property
    def midpoints(self) -> np.ndarray:
        """Bin midpoints ``c = (v+ + v-) / 2`` (re-derived, not stored)."""
        return (self.v_plus + self.v_minus) / 2.0

    @property
    def widths(self) -> np.ndarray:
        """Bin widths based on actual data extrema (``Delta`` in Table 3)."""
        return self.v_plus - self.v_minus

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    @property
    def lower_edges(self) -> np.ndarray:
        return self.edges[:-1]

    @property
    def upper_edges(self) -> np.ndarray:
        return self.edges[1:]

    def find_bin(self, value: float) -> int:
        """Bin index containing ``value`` (clipped to the edge range)."""
        return int(bin_indices(self.edges, np.asarray([value]))[0])

    # ------------------------------------------------------------------ #

    @classmethod
    def from_refinement(
        cls,
        column: str,
        values: np.ndarray,
        edges: list[float] | np.ndarray,
        v_minus: list[float] | np.ndarray,
        v_plus: list[float] | np.ndarray,
        unique: list[int] | np.ndarray,
        min_points: int,
        alpha: float,
        min_spacing: float = 1.0,
    ) -> "Histogram1D":
        """Finalise a histogram after bin refinement (Algorithm 1, lines 10–12).

        Computes the bin counts with a standard histogram pass over the data
        and the weighted-centre bounds from Eq. 10.
        """
        edges = np.asarray(edges, dtype=float)
        if len(edges) < 2:
            edges = np.array([0.0, 1.0])
        counts, _ = np.histogram(values, bins=edges)
        hist = cls(
            column=column,
            edges=edges,
            counts=counts.astype(float),
            v_minus=np.asarray(v_minus, dtype=float),
            v_plus=np.asarray(v_plus, dtype=float),
            unique=np.asarray(unique, dtype=float),
        )
        hist.centre_lower, hist.centre_upper = weighted_centre_bounds(
            hist.counts, hist.v_minus, hist.v_plus, hist.unique, min_points, alpha, min_spacing
        )
        return hist

    # ------------------------------------------------------------------ #

    @classmethod
    def merge(
        cls,
        hists: list["Histogram1D"],
        min_points: int,
        alpha: float,
        min_spacing: float = 1.0,
    ) -> "Histogram1D":
        """Combine per-partition histograms of one column into a single one.

        The merged histogram lives on the union of every input's bin edges;
        each input's counts and unique counts are redistributed onto that
        grid with :func:`projection_matrix` and summed, extrema are clipped
        per union bin, and the weighted-centre bounds (Eq. 10) are
        recomputed for the merged bins.  This is what lets per-partition
        synopses be built independently (in parallel, or incrementally
        after an append) and still answer queries as one synopsis.
        """
        if not hists:
            raise ValueError("cannot merge zero histograms")
        column = hists[0].column
        if any(h.column != column for h in hists):
            raise ValueError("can only merge histograms of the same column")
        if len(hists) == 1:
            return hists[0]
        edges = np.unique(np.concatenate([h.edges for h in hists]))
        k = len(edges) - 1
        counts = np.zeros(k)
        unique = np.zeros(k)
        v_minus = np.full(k, np.inf)
        v_plus = np.full(k, -np.inf)
        for hist in hists:
            matrix = projection_matrix(hist.edges, hist.v_minus, hist.v_plus, edges)
            counts += hist.counts @ matrix
            # Partitions shard rows of one table, so their value sets overlap
            # heavily: the max projected unique count per bin is a far better
            # distinct estimate than the sum (which breaks equality coverage,
            # Eq. 5 dividing by ``u``).
            unique = np.maximum(unique, hist.unique @ matrix)
            pvmin, pvmax = project_extrema(matrix, hist.counts, hist.v_minus, hist.v_plus, edges)
            v_minus = np.minimum(v_minus, pvmin)
            v_plus = np.maximum(v_plus, pvmax)
        untouched = ~np.isfinite(v_minus)
        v_minus[untouched] = edges[:-1][untouched]
        v_plus[~np.isfinite(v_plus)] = edges[1:][~np.isfinite(v_plus)]
        cap = np.minimum(distinct_capacity(edges, min_spacing), np.maximum(counts, 1.0))
        unique = np.where(counts > 0, np.clip(unique, 1.0, cap), 0.0)
        merged = cls(
            column=column,
            edges=edges,
            counts=counts,
            v_minus=v_minus,
            v_plus=v_plus,
            unique=unique,
        )
        merged.centre_lower, merged.centre_upper = weighted_centre_bounds(
            merged.counts, merged.v_minus, merged.v_plus, merged.unique,
            min_points, alpha, min_spacing,
        )
        return merged

    # ------------------------------------------------------------------ #

    def storage_entries(self) -> dict[str, np.ndarray]:
        """Arrays persisted by the storage encoder (midpoints / centre bounds
        are re-derivable and therefore excluded, §4.3)."""
        return {
            "edges": self.edges,
            "v_minus": self.v_minus,
            "v_plus": self.v_plus,
            "unique": self.unique,
            "counts": self.counts,
        }
