"""One-dimensional PairwiseHist histograms and their per-bin metadata (§4)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .centre_bounds import weighted_centre_bounds


def bin_indices(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Map values to bin indices for half-open bins ``[e_t, e_{t+1})``.

    The final bin is closed on the right, matching ``numpy.histogram``.
    Values outside the edge range are clipped into the first / last bin.
    """
    idx = np.searchsorted(edges, values, side="right") - 1
    return np.clip(idx, 0, len(edges) - 2)


@dataclass
class Histogram1D:
    """One-dimensional histogram with PairwiseHist bin metadata.

    Attributes
    ----------
    column:
        Name of the column the histogram summarises.
    edges:
        Bin edges, length ``k + 1`` (``e`` in the paper).
    counts:
        Bin counts, length ``k`` (the diagonal of ``H(i)``).
    v_minus, v_plus:
        Minimum / maximum actual data value in each bin.
    unique:
        Number of unique values in each bin (``u``).
    centre_lower, centre_upper:
        Bounds on the weighted centre of each bin (Eq. 10).
    """

    column: str
    edges: np.ndarray
    counts: np.ndarray
    v_minus: np.ndarray
    v_plus: np.ndarray
    unique: np.ndarray
    centre_lower: np.ndarray = field(default=None)  # type: ignore[assignment]
    centre_upper: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=float)
        self.counts = np.asarray(self.counts, dtype=float)
        self.v_minus = np.asarray(self.v_minus, dtype=float)
        self.v_plus = np.asarray(self.v_plus, dtype=float)
        self.unique = np.asarray(self.unique, dtype=float)
        k = self.num_bins
        for name in ("counts", "v_minus", "v_plus", "unique"):
            if len(getattr(self, name)) != k:
                raise ValueError(f"{name} must have length {k} to match the edges")
        if self.centre_lower is None or self.centre_upper is None:
            self.centre_lower = self.v_minus.copy()
            self.centre_upper = self.v_plus.copy()
        else:
            self.centre_lower = np.asarray(self.centre_lower, dtype=float)
            self.centre_upper = np.asarray(self.centre_upper, dtype=float)

    # ------------------------------------------------------------------ #

    @property
    def num_bins(self) -> int:
        """``k`` — number of bins."""
        return len(self.edges) - 1

    @property
    def midpoints(self) -> np.ndarray:
        """Bin midpoints ``c = (v+ + v-) / 2`` (re-derived, not stored)."""
        return (self.v_plus + self.v_minus) / 2.0

    @property
    def widths(self) -> np.ndarray:
        """Bin widths based on actual data extrema (``Delta`` in Table 3)."""
        return self.v_plus - self.v_minus

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    @property
    def lower_edges(self) -> np.ndarray:
        return self.edges[:-1]

    @property
    def upper_edges(self) -> np.ndarray:
        return self.edges[1:]

    def find_bin(self, value: float) -> int:
        """Bin index containing ``value`` (clipped to the edge range)."""
        return int(bin_indices(self.edges, np.asarray([value]))[0])

    # ------------------------------------------------------------------ #

    @classmethod
    def from_refinement(
        cls,
        column: str,
        values: np.ndarray,
        edges: list[float] | np.ndarray,
        v_minus: list[float] | np.ndarray,
        v_plus: list[float] | np.ndarray,
        unique: list[int] | np.ndarray,
        min_points: int,
        alpha: float,
        min_spacing: float = 1.0,
    ) -> "Histogram1D":
        """Finalise a histogram after bin refinement (Algorithm 1, lines 10–12).

        Computes the bin counts with a standard histogram pass over the data
        and the weighted-centre bounds from Eq. 10.
        """
        edges = np.asarray(edges, dtype=float)
        if len(edges) < 2:
            edges = np.array([0.0, 1.0])
        counts, _ = np.histogram(values, bins=edges)
        hist = cls(
            column=column,
            edges=edges,
            counts=counts.astype(float),
            v_minus=np.asarray(v_minus, dtype=float),
            v_plus=np.asarray(v_plus, dtype=float),
            unique=np.asarray(unique, dtype=float),
        )
        hist.centre_lower, hist.centre_upper = weighted_centre_bounds(
            hist.counts, hist.v_minus, hist.v_plus, hist.unique, min_points, alpha, min_spacing
        )
        return hist

    # ------------------------------------------------------------------ #

    def storage_entries(self) -> dict[str, np.ndarray]:
        """Arrays persisted by the storage encoder (midpoints / centre bounds
        are re-derivable and therefore excluded, §4.3)."""
        return {
            "edges": self.edges,
            "v_minus": self.v_minus,
            "v_plus": self.v_plus,
            "unique": self.unique,
            "counts": self.counts,
        }
