"""Recursive bin refinement (Algorithm 2 and its two-dimensional analogue).

``refine_bin_1d`` decides whether a bin's contents are uniformly
distributed; if not, it splits the bin at its midpoint (the paper found
equal-width splits to slightly outperform equal-depth) and recurses on both
halves.  ``refine_bin_2d`` does the same for a cell of a pairwise histogram,
testing each dimension separately and splitting the *less* uniform one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hypothesis import uniformity_test


@dataclass
class RefinementResult1D:
    """Output of :func:`refine_bin_1d` — parallel per-(sub)bin lists."""

    upper_edges: list[float] = field(default_factory=list)
    v_minus: list[float] = field(default_factory=list)
    v_plus: list[float] = field(default_factory=list)
    unique: list[int] = field(default_factory=list)

    def extend(self, other: "RefinementResult1D") -> None:
        self.upper_edges.extend(other.upper_edges)
        self.v_minus.extend(other.v_minus)
        self.v_plus.extend(other.v_plus)
        self.unique.extend(other.unique)

    @property
    def num_bins(self) -> int:
        return len(self.upper_edges)


def refine_bin_1d(
    lower: float,
    upper: float,
    values: np.ndarray,
    min_points: int,
    alpha: float,
    max_depth: int = 32,
) -> RefinementResult1D:
    """Algorithm 2 (``RefineBin1D``).

    Returns the upper edges of the original bin and any splits created,
    together with per-bin minimum, maximum and unique counts.
    """
    result = RefinementResult1D()
    if len(values) == 0:
        result.upper_edges.append(upper)
        result.v_minus.append(lower)
        result.v_plus.append(upper)
        result.unique.append(0)
        return result
    unique_values = np.unique(values)
    num_unique = len(unique_values)
    if num_unique == 1:
        value = float(unique_values[0])
        result.upper_edges.append(upper)
        result.v_minus.append(value)
        result.v_plus.append(value)
        result.unique.append(1)
        return result
    terminal = (
        len(values) < min_points
        or max_depth <= 0
        or uniformity_test(values, lower, upper, num_unique, alpha).is_uniform
    )
    if not terminal:
        split = _split_point(lower, upper, values)
        terminal = split is None
    if terminal:
        result.upper_edges.append(upper)
        result.v_minus.append(float(unique_values[0]))
        result.v_plus.append(float(unique_values[-1]))
        result.unique.append(num_unique)
        return result
    left_mask = values < split
    left = refine_bin_1d(lower, split, values[left_mask], min_points, alpha, max_depth - 1)
    right = refine_bin_1d(split, upper, values[~left_mask], min_points, alpha, max_depth - 1)
    result.extend(left)
    result.extend(right)
    return result


def _split_point(lower: float, upper: float, values: np.ndarray) -> float | None:
    """Equal-width split point, or ``None`` when the bin cannot be split.

    A split is rejected when it would leave one side empty (which happens
    for very narrow integer-domain bins), since such a split makes no
    progress and would recurse forever.
    """
    split = (lower + upper) / 2.0
    if not lower < split < upper:
        return None
    if not ((values < split).any() and (values >= split).any()):
        return None
    return split


@dataclass
class RefinementResult2D:
    """New bin edges produced by :func:`refine_bin_2d`, one list per dimension."""

    new_edges_i: list[float] = field(default_factory=list)
    new_edges_j: list[float] = field(default_factory=list)

    def extend(self, other: "RefinementResult2D") -> None:
        self.new_edges_i.extend(other.new_edges_i)
        self.new_edges_j.extend(other.new_edges_j)

    @property
    def has_splits(self) -> bool:
        return bool(self.new_edges_i or self.new_edges_j)


def refine_bin_2d(
    lower_i: float,
    upper_i: float,
    lower_j: float,
    upper_j: float,
    values_i: np.ndarray,
    values_j: np.ndarray,
    min_points: int,
    alpha: float,
    max_depth: int = 16,
) -> RefinementResult2D:
    """Two-dimensional analogue of Algorithm 2 (``RefineBin2D``).

    Each dimension is tested for uniformity separately.  When both are
    non-uniform the split is applied to the *least* uniform dimension
    (largest chi-squared statistic relative to its critical value), then the
    two halves are refined recursively.  Only the new edge positions are
    returned — Algorithm 1 inserts them into the pair's edge vectors and
    recomputes the counts afterwards.
    """
    result = RefinementResult2D()
    if len(values_i) < min_points or max_depth <= 0:
        return result
    unique_i = len(np.unique(values_i))
    unique_j = len(np.unique(values_j))
    test_i = uniformity_test(values_i, lower_i, upper_i, unique_i, alpha)
    test_j = uniformity_test(values_j, lower_j, upper_j, unique_j, alpha)
    split_i = not test_i.is_uniform and unique_i > 1
    split_j = not test_j.is_uniform and unique_j > 1
    if not split_i and not split_j:
        return result
    if split_i and split_j:
        # Both non-uniform: split the dimension that deviates more from
        # uniformity (Fig. 5c).
        ratio_i = test_i.statistic / max(test_i.critical_value, 1e-12)
        ratio_j = test_j.statistic / max(test_j.critical_value, 1e-12)
        split_dimension = "i" if ratio_i >= ratio_j else "j"
    else:
        split_dimension = "i" if split_i else "j"

    if split_dimension == "i":
        split = _split_point(lower_i, upper_i, values_i)
        if split is None:
            return result
        result.new_edges_i.append(split)
        mask = values_i < split
        left = refine_bin_2d(
            lower_i, split, lower_j, upper_j,
            values_i[mask], values_j[mask], min_points, alpha, max_depth - 1,
        )
        right = refine_bin_2d(
            split, upper_i, lower_j, upper_j,
            values_i[~mask], values_j[~mask], min_points, alpha, max_depth - 1,
        )
    else:
        split = _split_point(lower_j, upper_j, values_j)
        if split is None:
            return result
        result.new_edges_j.append(split)
        mask = values_j < split
        left = refine_bin_2d(
            lower_i, upper_i, lower_j, split,
            values_i[mask], values_j[mask], min_points, alpha, max_depth - 1,
        )
        right = refine_bin_2d(
            lower_i, upper_i, split, upper_j,
            values_i[~mask], values_j[~mask], min_points, alpha, max_depth - 1,
        )
    result.extend(left)
    result.extend(right)
    return result
