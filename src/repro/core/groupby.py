"""GROUP BY execution over PairwiseHist.

The paper's query class allows GROUP BY on categorical columns (§3).  A
group-by query is executed by rewriting it as one query per category: the
group column's categories are known from the GreedyGD pre-processor
dictionary, and each group adds an equality condition on the (already
transformed) group column to the predicate tree.
"""

from __future__ import annotations

from ..gd.preprocessor import ColumnTransform
from ..sql.ast import ComparisonOp, Condition, LogicalOp, Predicate, PredicateNode


def group_predicates(
    transform: ColumnTransform, predicate: Predicate | None
) -> list[tuple[str, Predicate]]:
    """Expand a group-by column into per-group predicates.

    Returns ``(label, predicate)`` pairs where the predicate is the original
    (transformed-domain) predicate AND an equality condition selecting the
    group, in the group column's code domain.
    """
    if not transform.is_categorical:
        raise ValueError(
            f"GROUP BY requires a categorical column, got {transform.name!r}"
        )
    groups: list[tuple[str, Predicate]] = []
    for code, label in enumerate(transform.categories):
        condition = Condition(column=transform.name, op=ComparisonOp.EQ, literal=float(code))
        if predicate is None:
            combined: Predicate = condition
        else:
            combined = PredicateNode(LogicalOp.AND, [predicate, condition])
        groups.append((label, combined))
    return groups
