"""Predicate coverage and its bounds (§5.2, Eq. 14–16 and Theorem 2).

Coverage ``beta`` is, per histogram bin, the estimated probability that a
point in the bin satisfies a predicate condition.  It is computed from the
bin metadata only (extrema, unique count) — never from the data — and its
bounds come from Theorem 2 for bins that passed the uniformity test and
from a worst-case argument for bins that did not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sql.ast import ComparisonOp
from .hypothesis import chi2_critical_value, terrell_scott_bins


@dataclass
class CoverageResult:
    """Coverage estimate and bounds, one entry per histogram bin."""

    estimate: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        self.estimate = np.clip(np.asarray(self.estimate, dtype=float), 0.0, 1.0)
        self.lower = np.clip(np.asarray(self.lower, dtype=float), 0.0, 1.0)
        self.upper = np.clip(np.asarray(self.upper, dtype=float), 0.0, 1.0)

    @property
    def num_bins(self) -> int:
        return len(self.estimate)


def _range_fraction(op: ComparisonOp, literal: float, v_minus: float, v_plus: float) -> float:
    """Fraction of the bin value range ``[v-, v+]`` satisfying a range condition."""
    width = v_plus - v_minus
    if width <= 0:
        return 1.0 if _satisfies(op, literal, v_minus) else 0.0
    if op in (ComparisonOp.LT, ComparisonOp.LE):
        fraction = (literal - v_minus) / width
    else:  # GT / GE
        fraction = (v_plus - literal) / width
    return float(np.clip(fraction, 0.0, 1.0))


def _satisfies(op: ComparisonOp, literal: float, value: float) -> bool:
    if op is ComparisonOp.LT:
        return value < literal
    if op is ComparisonOp.LE:
        return value <= literal
    if op is ComparisonOp.GT:
        return value > literal
    if op is ComparisonOp.GE:
        return value >= literal
    if op is ComparisonOp.EQ:
        return value == literal
    return value != literal


def coverage_estimate(
    op: ComparisonOp,
    literal: float,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    unique: np.ndarray,
) -> np.ndarray:
    """Eq. 15–16: per-bin coverage of a single condition."""
    k = len(v_minus)
    beta = np.zeros(k)
    for t in range(k):
        u = unique[t]
        if u <= 0:
            beta[t] = 0.0
            continue
        lo, hi = float(v_minus[t]), float(v_plus[t])
        if op.is_equality:
            inside = lo <= literal <= hi
            hit = (1.0 / u) if inside else 0.0
            beta[t] = hit if op is ComparisonOp.EQ else 1.0 - hit
            continue
        low_ok = _satisfies(op, literal, lo)
        high_ok = _satisfies(op, literal, hi)
        if not low_ok and not high_ok:
            beta[t] = 0.0
        elif low_ok and high_ok:
            beta[t] = 1.0
        elif u == 2:
            beta[t] = 0.5
        else:
            beta[t] = _range_fraction(op, literal, lo, hi)
    return beta


def partial_count_bounds(
    count: float, sub_bins: int, covered: int, chi2_alpha: float
) -> tuple[float, float]:
    """Theorem 2 (Eq. 17): bounds on the count over ``covered`` of ``sub_bins`` sub-bins."""
    if count <= 0 or sub_bins <= 0:
        return 0.0, 0.0
    covered = int(np.clip(covered, 0, sub_bins))
    expected = count * covered / sub_bins
    if covered == 0:
        return 0.0, 0.0
    if covered == sub_bins:
        return count, count
    spread = expected * np.sqrt(chi2_alpha * (sub_bins - covered) / (count * covered))
    return max(0.0, expected - spread), min(count, expected + spread)


def coverage_bounds(
    beta: np.ndarray,
    counts: np.ndarray,
    unique: np.ndarray,
    min_points: int,
    alpha: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 22–23: per-bin coverage bounds.

    Bins with exact coverage (0 or 1) keep it; partially-covered bins with
    fewer than ``M`` points fall back to the one-point worst case; bins that
    passed the uniformity test use the Theorem 2 partial-count bounds.
    """
    k = len(beta)
    lower = np.empty(k)
    upper = np.empty(k)
    for t in range(k):
        b = float(beta[t])
        h = float(counts[t])
        if b in (0.0, 1.0) or h <= 0:
            lower[t] = b
            upper[t] = b
            continue
        if h < min_points:
            lower[t] = 1.0 / h
            upper[t] = 1.0 - 1.0 / h
            if lower[t] > upper[t]:
                lower[t] = upper[t] = b
            continue
        s = terrell_scott_bins(int(unique[t]))
        if s < 2:
            lower[t] = b
            upper[t] = b
            continue
        chi2_alpha = chi2_critical_value(alpha, s)
        a = int(np.floor(b * s))
        c = int(np.ceil(b * s))
        lo_count, _ = partial_count_bounds(h, s, a, chi2_alpha)
        _, hi_count = partial_count_bounds(h, s, c, chi2_alpha)
        lower[t] = lo_count / h
        upper[t] = hi_count / h
    lower = np.minimum(lower, beta)
    upper = np.maximum(upper, beta)
    return np.clip(lower, 0.0, 1.0), np.clip(upper, 0.0, 1.0)


def condition_coverage(
    op: ComparisonOp,
    literal: float,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    unique: np.ndarray,
    counts: np.ndarray,
    min_points: int,
    alpha: float,
) -> CoverageResult:
    """Coverage estimate plus bounds for one condition over one set of bins."""
    beta = coverage_estimate(op, literal, v_minus, v_plus, unique)
    lower, upper = coverage_bounds(beta, counts, unique, min_points, alpha)
    return CoverageResult(estimate=beta, lower=lower, upper=upper)


def interval_coverage(
    lower_literal: float,
    upper_literal: float,
    v_minus: np.ndarray,
    v_plus: np.ndarray,
    unique: np.ndarray,
) -> np.ndarray:
    """Coverage of the interval ``[lower_literal, upper_literal]`` per bin.

    Used by the delayed-transformation consolidation of AND-connected range
    conditions on the same column: the group is equivalent to one interval,
    and the satisfied fraction of a bin is the overlap of that interval with
    the bin's value range (exact under the per-bin uniformity assumption).
    """
    k = len(v_minus)
    beta = np.zeros(k)
    for t in range(k):
        u = unique[t]
        if u <= 0:
            continue
        lo, hi = float(v_minus[t]), float(v_plus[t])
        overlap_lo = max(lower_literal, lo)
        overlap_hi = min(upper_literal, hi)
        if overlap_hi < overlap_lo:
            continue
        if overlap_lo <= lo and overlap_hi >= hi:
            beta[t] = 1.0
        elif overlap_hi == overlap_lo:
            beta[t] = 1.0 / u
        elif u == 2:
            beta[t] = 0.5
        else:
            width = hi - lo
            beta[t] = (overlap_hi - overlap_lo) / width if width > 0 else 1.0
    return np.clip(beta, 0.0, 1.0)


def consolidate_and(results: list[CoverageResult]) -> CoverageResult:
    """Delayed-transformation consolidation of same-column conditions under AND.

    For nested / overlapping range conditions on the same column the
    satisfied fraction of a bin is the overlap, i.e. the element-wise
    minimum of the individual coverages (Fig. 7: beta_12 = min(beta_1, beta_2)).
    """
    estimate = np.minimum.reduce([r.estimate for r in results])
    lower = np.minimum.reduce([r.lower for r in results])
    upper = np.minimum.reduce([r.upper for r in results])
    return CoverageResult(estimate=estimate, lower=lower, upper=upper)


def consolidate_or(results: list[CoverageResult]) -> CoverageResult:
    """Same-column consolidation under OR: capped element-wise sum.

    Exact when the conditions cover disjoint parts of the bin (the common
    case for generated workloads) and an upper bound otherwise.
    """
    estimate = np.clip(np.add.reduce([r.estimate for r in results]), 0.0, 1.0)
    lower = np.clip(np.maximum.reduce([r.lower for r in results]), 0.0, 1.0)
    upper = np.clip(np.add.reduce([r.upper for r in results]), 0.0, 1.0)
    return CoverageResult(estimate=estimate, lower=lower, upper=upper)
