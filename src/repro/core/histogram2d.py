"""Two-dimensional (pairwise) histograms and their per-dimension metadata (§4, Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .histogram1d import (
    Histogram1D,
    bin_indices,
    distinct_capacity,
    project_extrema,
    projection_matrix,
)


def _coarse_grid_targets(k_row: int, k_col: int, max_cells: int) -> tuple[int, int]:
    """Per-axis bin targets whose product respects ``max_cells``.

    Both axes shrink by the same factor where possible; when one axis
    floors at a single bin (or clamps at the budget), the other receives
    the remaining budget instead of a blind sqrt share, so skewed grids
    (2 x 800 bins) honour the cap too.
    """
    scale = float(np.sqrt(max_cells / (k_row * k_col)))
    target_row = min(max(1, int(k_row * scale)), max_cells)
    target_col = max(1, min(k_col, int(k_col * scale), max_cells // target_row))
    # Hand any budget freed by the column clamp back to the row axis.
    target_row = max(1, min(k_row, target_row, max_cells // target_col))
    return target_row, target_col


def _coarse_edge_indices(num_bins: int, target: int) -> np.ndarray:
    """Edge indices that re-bin ``num_bins`` down to ``target`` bins.

    Returns indices into the edge array (first and last always kept), so
    consecutive pairs delimit contiguous runs of source bins to be summed.
    """
    return np.unique(np.linspace(0, num_bins, target + 1).round().astype(int))


@dataclass
class AxisMetadata:
    """Per-bin metadata along one dimension of a two-dimensional histogram.

    The 2-d histogram for columns ``(i, j)`` can have more bin edges than the
    corresponding 1-d histograms because of the extra refinement pass
    (superscripts ``(i|j)`` / ``(j|i)`` in the paper).  Metadata — extrema,
    unique counts and marginal counts — is kept per bin of each dimension.
    ``parent`` maps every refined bin back to the 1-d histogram bin that
    contains it, which is how query results are folded back onto the
    aggregation column's 1-d bins (Eq. 27).
    """

    column: str
    edges: np.ndarray
    v_minus: np.ndarray
    v_plus: np.ndarray
    unique: np.ndarray
    marginal_counts: np.ndarray
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=float)
        self.v_minus = np.asarray(self.v_minus, dtype=float)
        self.v_plus = np.asarray(self.v_plus, dtype=float)
        self.unique = np.asarray(self.unique, dtype=float)
        self.marginal_counts = np.asarray(self.marginal_counts, dtype=float)
        self.parent = np.asarray(self.parent, dtype=int)

    @property
    def num_bins(self) -> int:
        return len(self.edges) - 1

    @property
    def midpoints(self) -> np.ndarray:
        return (self.v_plus + self.v_minus) / 2.0


@dataclass
class Histogram2D:
    """Pairwise histogram ``H(ij)`` with per-dimension metadata.

    ``row`` corresponds to column ``i`` (the first column of the pair) and
    ``col`` to column ``j``.  ``counts[ti, tj]`` is the number of sampled
    rows falling in row-bin ``ti`` and column-bin ``tj``.
    """

    row: AxisMetadata
    col: AxisMetadata
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=float)
        expected = (self.row.num_bins, self.col.num_bins)
        if self.counts.shape != expected:
            raise ValueError(f"counts shape {self.counts.shape} does not match bins {expected}")

    # ------------------------------------------------------------------ #

    @property
    def columns(self) -> tuple[str, str]:
        return self.row.column, self.col.column

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    def oriented(self, aggregation_column: str) -> tuple[np.ndarray, AxisMetadata, AxisMetadata]:
        """Return ``(counts, agg_axis, pred_axis)`` with rows on the aggregation column.

        ``counts`` has shape ``(agg_bins, pred_bins)`` regardless of the order
        in which the pair was stored.
        """
        if aggregation_column == self.row.column:
            return self.counts, self.row, self.col
        if aggregation_column == self.col.column:
            return self.counts.T, self.col, self.row
        raise KeyError(
            f"column {aggregation_column!r} is not part of pair {self.columns!r}"
        )

    def non_zero_count(self) -> int:
        """Number of non-zero cells (used by the sparse storage encoder)."""
        return int(np.count_nonzero(self.counts))

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        column_i: str,
        column_j: str,
        values_i: np.ndarray,
        values_j: np.ndarray,
        edges_i: np.ndarray,
        edges_j: np.ndarray,
        hist_i: Histogram1D,
        hist_j: Histogram1D,
        counts: np.ndarray | None = None,
    ) -> "Histogram2D":
        """Finalise a pairwise histogram for given (possibly refined) edges.

        Computes cell counts, per-dimension extrema / unique counts /
        marginal counts and the parent maps back to the 1-d histograms
        (Algorithm 1, lines 22–26).  ``counts`` lets the builder pass cell
        counts it already computed for these exact edges (the no-refinement
        fast path) instead of histogramming the pair a second time.
        """
        edges_i = np.asarray(edges_i, dtype=float)
        edges_j = np.asarray(edges_j, dtype=float)
        if counts is None:
            counts, _, _ = np.histogram2d(values_i, values_j, bins=[edges_i, edges_j])
        row_meta = cls._axis_metadata(column_i, values_i, edges_i, hist_i)
        col_meta = cls._axis_metadata(column_j, values_j, edges_j, hist_j)
        row_meta.marginal_counts = counts.sum(axis=1)
        col_meta.marginal_counts = counts.sum(axis=0)
        return cls(row=row_meta, col=col_meta, counts=counts)

    @classmethod
    def merge(
        cls,
        hists: list["Histogram2D"],
        parent_i: Histogram1D,
        parent_j: Histogram1D,
        min_spacing: float = 1.0,
        max_cells: int | None = None,
    ) -> "Histogram2D":
        """Combine per-partition pairwise histograms into a single one.

        Each input's cell counts are redistributed onto the union grid of
        row / column edges via per-axis projection matrices (``R^T C C``
        as one matrix product per input), axis extrema and unique counts
        are merged the same way as in :meth:`Histogram1D.merge`, and the
        parent maps are recomputed against the merged 1-d histograms
        (``parent_i`` / ``parent_j``) so Eq. 27 folding keeps working.

        The union grid grows with the number of inputs; ``max_cells``
        bounds it by re-binning both axes proportionally (contiguous runs
        of union bins summed together) once the merged grid would exceed
        the budget.  Counts are conserved exactly; resolution degrades
        smoothly instead of memory and query time growing without bound at
        high partition counts.
        """
        if not hists:
            raise ValueError("cannot merge zero histograms")
        columns = hists[0].columns
        if any(h.columns != columns for h in hists):
            raise ValueError("can only merge histograms of the same column pair")
        if len(hists) == 1:
            return hists[0]
        row_edges = np.unique(np.concatenate([h.row.edges for h in hists]))
        col_edges = np.unique(np.concatenate([h.col.edges for h in hists]))
        k_row, k_col = len(row_edges) - 1, len(col_edges) - 1
        counts = np.zeros((k_row, k_col))
        row_min = np.full(k_row, np.inf)
        row_max = np.full(k_row, -np.inf)
        col_min = np.full(k_col, np.inf)
        col_max = np.full(k_col, -np.inf)
        row_unique = np.zeros(k_row)
        col_unique = np.zeros(k_col)
        for hist in hists:
            row_proj = projection_matrix(hist.row.edges, hist.row.v_minus, hist.row.v_plus, row_edges)
            col_proj = projection_matrix(hist.col.edges, hist.col.v_minus, hist.col.v_plus, col_edges)
            counts += row_proj.T @ hist.counts @ col_proj
            # Max, not sum: partitions share one value domain (see Histogram1D.merge).
            row_unique = np.maximum(row_unique, hist.row.unique @ row_proj)
            col_unique = np.maximum(col_unique, hist.col.unique @ col_proj)
            for axis, proj, vmin, vmax in (
                (hist.row, row_proj, row_min, row_max),
                (hist.col, col_proj, col_min, col_max),
            ):
                edges = row_edges if axis is hist.row else col_edges
                pvmin, pvmax = project_extrema(
                    proj, axis.marginal_counts, axis.v_minus, axis.v_plus, edges
                )
                np.minimum(vmin, pvmin, out=vmin)
                np.maximum(vmax, pvmax, out=vmax)
        if max_cells is not None and counts.size > max_cells:
            target_row, target_col = _coarse_grid_targets(k_row, k_col, max_cells)
            keep_row = _coarse_edge_indices(k_row, target_row)
            keep_col = _coarse_edge_indices(k_col, target_col)
            counts = np.add.reduceat(
                np.add.reduceat(counts, keep_row[:-1], axis=0), keep_col[:-1], axis=1
            )
            row_edges = row_edges[keep_row]
            col_edges = col_edges[keep_col]
            row_min = np.minimum.reduceat(row_min, keep_row[:-1])
            row_max = np.maximum.reduceat(row_max, keep_row[:-1])
            col_min = np.minimum.reduceat(col_min, keep_col[:-1])
            col_max = np.maximum.reduceat(col_max, keep_col[:-1])
            # Union bins are disjoint intervals, so distinct counts add.
            row_unique = np.add.reduceat(row_unique, keep_row[:-1])
            col_unique = np.add.reduceat(col_unique, keep_col[:-1])
        row_meta = cls._merged_axis(
            columns[0], row_edges, row_min, row_max, row_unique,
            counts.sum(axis=1), parent_i, min_spacing,
        )
        col_meta = cls._merged_axis(
            columns[1], col_edges, col_min, col_max, col_unique,
            counts.sum(axis=0), parent_j, min_spacing,
        )
        return cls(row=row_meta, col=col_meta, counts=counts)

    @staticmethod
    def _merged_axis(
        column: str,
        edges: np.ndarray,
        v_minus: np.ndarray,
        v_plus: np.ndarray,
        unique: np.ndarray,
        marginal_counts: np.ndarray,
        parent_hist: Histogram1D,
        min_spacing: float = 1.0,
    ) -> AxisMetadata:
        """Finalise one merged axis: fill untouched bins, rebuild the parent map."""
        v_minus = v_minus.copy()
        v_plus = v_plus.copy()
        untouched_lo = ~np.isfinite(v_minus)
        untouched_hi = ~np.isfinite(v_plus)
        v_minus[untouched_lo] = edges[:-1][untouched_lo]
        v_plus[untouched_hi] = edges[1:][untouched_hi]
        cap = np.minimum(
            distinct_capacity(edges, min_spacing), np.maximum(marginal_counts, 1.0)
        )
        unique = np.where(marginal_counts > 0, np.clip(unique, 1.0, cap), 0.0)
        parent = bin_indices(parent_hist.edges, (edges[:-1] + edges[1:]) / 2.0)
        return AxisMetadata(
            column=column,
            edges=edges,
            v_minus=v_minus,
            v_plus=v_plus,
            unique=unique,
            marginal_counts=marginal_counts,
            parent=parent,
        )

    @staticmethod
    def _axis_metadata(
        column: str, values: np.ndarray, edges: np.ndarray, parent_hist: Histogram1D
    ) -> AxisMetadata:
        k = len(edges) - 1
        v_minus = edges[:-1].astype(float).copy()
        v_plus = edges[1:].astype(float).copy()
        unique = np.zeros(k)
        if len(values):
            # One lexsort by (bin, value) makes every per-bin statistic a
            # segment operation: extrema are the segment endpoints and the
            # unique count is the number of value changes per segment.
            idx = bin_indices(edges, values)
            order = np.lexsort((values, idx))
            sorted_idx = idx[order]
            sorted_vals = values[order]
            boundaries = np.searchsorted(sorted_idx, np.arange(k + 1))
            nonempty = boundaries[:-1] < boundaries[1:]
            starts = boundaries[:-1][nonempty]
            ends = boundaries[1:][nonempty]
            v_minus[nonempty] = sorted_vals[starts]
            v_plus[nonempty] = sorted_vals[ends - 1]
            first_of_run = np.ones(len(sorted_vals), dtype=np.int64)
            if len(sorted_vals) > 1:
                same = (np.diff(sorted_vals) == 0) & (np.diff(sorted_idx) == 0)
                first_of_run[1:] = ~same
            unique[nonempty] = np.add.reduceat(first_of_run, starts)
        parent = bin_indices(parent_hist.edges, (edges[:-1] + edges[1:]) / 2.0)
        return AxisMetadata(
            column=column,
            edges=edges,
            v_minus=v_minus,
            v_plus=v_plus,
            unique=unique,
            marginal_counts=np.zeros(k),
            parent=parent,
        )
