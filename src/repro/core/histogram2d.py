"""Two-dimensional (pairwise) histograms and their per-dimension metadata (§4, Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .histogram1d import Histogram1D, bin_indices


@dataclass
class AxisMetadata:
    """Per-bin metadata along one dimension of a two-dimensional histogram.

    The 2-d histogram for columns ``(i, j)`` can have more bin edges than the
    corresponding 1-d histograms because of the extra refinement pass
    (superscripts ``(i|j)`` / ``(j|i)`` in the paper).  Metadata — extrema,
    unique counts and marginal counts — is kept per bin of each dimension.
    ``parent`` maps every refined bin back to the 1-d histogram bin that
    contains it, which is how query results are folded back onto the
    aggregation column's 1-d bins (Eq. 27).
    """

    column: str
    edges: np.ndarray
    v_minus: np.ndarray
    v_plus: np.ndarray
    unique: np.ndarray
    marginal_counts: np.ndarray
    parent: np.ndarray

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=float)
        self.v_minus = np.asarray(self.v_minus, dtype=float)
        self.v_plus = np.asarray(self.v_plus, dtype=float)
        self.unique = np.asarray(self.unique, dtype=float)
        self.marginal_counts = np.asarray(self.marginal_counts, dtype=float)
        self.parent = np.asarray(self.parent, dtype=int)

    @property
    def num_bins(self) -> int:
        return len(self.edges) - 1

    @property
    def midpoints(self) -> np.ndarray:
        return (self.v_plus + self.v_minus) / 2.0


@dataclass
class Histogram2D:
    """Pairwise histogram ``H(ij)`` with per-dimension metadata.

    ``row`` corresponds to column ``i`` (the first column of the pair) and
    ``col`` to column ``j``.  ``counts[ti, tj]`` is the number of sampled
    rows falling in row-bin ``ti`` and column-bin ``tj``.
    """

    row: AxisMetadata
    col: AxisMetadata
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=float)
        expected = (self.row.num_bins, self.col.num_bins)
        if self.counts.shape != expected:
            raise ValueError(f"counts shape {self.counts.shape} does not match bins {expected}")

    # ------------------------------------------------------------------ #

    @property
    def columns(self) -> tuple[str, str]:
        return self.row.column, self.col.column

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    def oriented(self, aggregation_column: str) -> tuple[np.ndarray, AxisMetadata, AxisMetadata]:
        """Return ``(counts, agg_axis, pred_axis)`` with rows on the aggregation column.

        ``counts`` has shape ``(agg_bins, pred_bins)`` regardless of the order
        in which the pair was stored.
        """
        if aggregation_column == self.row.column:
            return self.counts, self.row, self.col
        if aggregation_column == self.col.column:
            return self.counts.T, self.col, self.row
        raise KeyError(
            f"column {aggregation_column!r} is not part of pair {self.columns!r}"
        )

    def non_zero_count(self) -> int:
        """Number of non-zero cells (used by the sparse storage encoder)."""
        return int(np.count_nonzero(self.counts))

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        column_i: str,
        column_j: str,
        values_i: np.ndarray,
        values_j: np.ndarray,
        edges_i: np.ndarray,
        edges_j: np.ndarray,
        hist_i: Histogram1D,
        hist_j: Histogram1D,
    ) -> "Histogram2D":
        """Finalise a pairwise histogram for given (possibly refined) edges.

        Computes cell counts, per-dimension extrema / unique counts /
        marginal counts and the parent maps back to the 1-d histograms
        (Algorithm 1, lines 22–26).
        """
        edges_i = np.asarray(edges_i, dtype=float)
        edges_j = np.asarray(edges_j, dtype=float)
        counts, _, _ = np.histogram2d(values_i, values_j, bins=[edges_i, edges_j])
        row_meta = cls._axis_metadata(column_i, values_i, edges_i, hist_i)
        col_meta = cls._axis_metadata(column_j, values_j, edges_j, hist_j)
        row_meta.marginal_counts = counts.sum(axis=1)
        col_meta.marginal_counts = counts.sum(axis=0)
        return cls(row=row_meta, col=col_meta, counts=counts)

    @staticmethod
    def _axis_metadata(
        column: str, values: np.ndarray, edges: np.ndarray, parent_hist: Histogram1D
    ) -> AxisMetadata:
        k = len(edges) - 1
        v_minus = edges[:-1].astype(float).copy()
        v_plus = edges[1:].astype(float).copy()
        unique = np.zeros(k)
        if len(values):
            idx = bin_indices(edges, values)
            order = np.argsort(idx, kind="stable")
            sorted_idx = idx[order]
            sorted_vals = values[order]
            boundaries = np.searchsorted(sorted_idx, np.arange(k + 1))
            for t in range(k):
                lo, hi = boundaries[t], boundaries[t + 1]
                if hi > lo:
                    segment = sorted_vals[lo:hi]
                    v_minus[t] = segment.min()
                    v_plus[t] = segment.max()
                    unique[t] = len(np.unique(segment))
        parent = bin_indices(parent_hist.edges, (edges[:-1] + edges[1:]) / 2.0)
        return AxisMetadata(
            column=column,
            edges=edges,
            v_minus=v_minus,
            v_plus=v_plus,
            unique=unique,
            marginal_counts=np.zeros(k),
            parent=parent,
        )
