"""PairwiseHist construction (Algorithm 1, ``BuildPairwiseHist``).

The builder consumes integer-encoded columns (the GreedyGD pre-processed
domain), optional per-column initial bin edges seeded from the GD bases,
and the construction parameters.  It produces a :class:`PairwiseHist`
containing refined 1-d histograms for every column and refined 2-d
histograms for every pair of columns.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from .histogram1d import Histogram1D, bin_indices
from .histogram2d import Histogram2D
from .params import PairwiseHistParams
from .refine import refine_bin_1d, refine_bin_2d
from .synopsis import PairwiseHist


def _sample_indices(num_rows: int, params: PairwiseHistParams) -> np.ndarray:
    """Uniformly sample the row indices used to build the synopsis."""
    target = params.sample_size
    if target is None or target >= num_rows:
        return np.arange(num_rows)
    rng = np.random.default_rng(params.seed)
    return np.sort(rng.choice(num_rows, size=target, replace=False))


def _initial_edges(
    values: np.ndarray, seeds: np.ndarray | None, params: PairwiseHistParams
) -> np.ndarray:
    """Initial bin edges for a column (Algorithm 1, line 4).

    Uses the GD bases when available — downsampled to at most
    ``ceil(Ns / M)`` values and clipped to the observed data range — and the
    plain min / max of the column otherwise.
    """
    vmin = float(values.min())
    vmax = float(values.max())
    if vmax <= vmin:
        vmax = vmin + 1.0
    if seeds is None or len(seeds) == 0:
        return np.array([vmin, vmax])
    seeds = np.unique(np.asarray(seeds, dtype=float))
    seeds = seeds[(seeds > vmin) & (seeds < vmax)]
    limit = params.effective_initial_bins
    if len(seeds) > limit:
        step = max(1, len(seeds) // limit)
        seeds = seeds[::step][:limit]
    return np.unique(np.concatenate([[vmin], seeds, [vmax]]))


def _build_histogram_1d(
    column: str,
    values: np.ndarray,
    seeds: np.ndarray | None,
    params: PairwiseHistParams,
) -> Histogram1D:
    """Refine one column into a finished :class:`Histogram1D`."""
    if values.size == 0:
        return Histogram1D(
            column=column,
            edges=np.array([0.0, 1.0]),
            counts=np.array([0.0]),
            v_minus=np.array([0.0]),
            v_plus=np.array([1.0]),
            unique=np.array([0.0]),
        )
    initial = _initial_edges(values, seeds, params)
    edges: list[float] = [float(initial[0])]
    v_minus: list[float] = []
    v_plus: list[float] = []
    unique: list[int] = []
    for t in range(len(initial) - 1):
        lower, upper = float(initial[t]), float(initial[t + 1])
        if t == len(initial) - 2:
            mask = (values >= lower) & (values <= upper)
        else:
            mask = (values >= lower) & (values < upper)
        refined = refine_bin_1d(
            lower, upper, values[mask], params.min_points, params.alpha, params.max_refine_depth
        )
        edges.extend(refined.upper_edges)
        v_minus.extend(refined.v_minus)
        v_plus.extend(refined.v_plus)
        unique.extend(refined.unique)
    return Histogram1D.from_refinement(
        column=column,
        values=values,
        edges=edges,
        v_minus=v_minus,
        v_plus=v_plus,
        unique=unique,
        min_points=params.min_points,
        alpha=params.alpha,
        min_spacing=params.min_spacing,
    )


def _build_histogram_2d(
    column_i: str,
    column_j: str,
    values_i: np.ndarray,
    values_j: np.ndarray,
    hist_i: Histogram1D,
    hist_j: Histogram1D,
    params: PairwiseHistParams,
) -> Histogram2D:
    """Build and refine the pairwise histogram for one pair of columns."""
    edges_i = hist_i.edges.copy()
    edges_j = hist_j.edges.copy()
    if values_i.size == 0:
        return Histogram2D.build(
            column_i, column_j, values_i, values_j, edges_i, edges_j, hist_i, hist_j
        )
    counts, _, _ = np.histogram2d(values_i, values_j, bins=[edges_i, edges_j])
    new_edges_i: list[float] = []
    new_edges_j: list[float] = []
    hot_cells = np.argwhere(counts > params.min_points)
    if hot_cells.size:
        idx_i = bin_indices(edges_i, values_i)
        idx_j = bin_indices(edges_j, values_j)
        num_j = len(edges_j) - 1
        cell_ids = idx_i * num_j + idx_j
        order = np.argsort(cell_ids, kind="stable")
        sorted_cells = cell_ids[order]
        for ti, tj in hot_cells:
            cell = ti * num_j + tj
            lo = np.searchsorted(sorted_cells, cell, side="left")
            hi = np.searchsorted(sorted_cells, cell, side="right")
            rows = order[lo:hi]
            refined = refine_bin_2d(
                float(edges_i[ti]),
                float(edges_i[ti + 1]),
                float(edges_j[tj]),
                float(edges_j[tj + 1]),
                values_i[rows],
                values_j[rows],
                params.min_points,
                params.alpha,
            )
            new_edges_i.extend(refined.new_edges_i)
            new_edges_j.extend(refined.new_edges_j)
    if new_edges_i:
        edges_i = np.unique(np.concatenate([edges_i, np.asarray(new_edges_i, dtype=float)]))
    if new_edges_j:
        edges_j = np.unique(np.concatenate([edges_j, np.asarray(new_edges_j, dtype=float)]))
    if not new_edges_i and not new_edges_j:
        # Refinement added no edges: the detection pass's counts are final.
        return Histogram2D.build(
            column_i, column_j, values_i, values_j, edges_i, edges_j, hist_i, hist_j,
            counts=counts,
        )
    return Histogram2D.build(
        column_i, column_j, values_i, values_j, edges_i, edges_j, hist_i, hist_j
    )


def build_pairwise_hist(
    codes: Mapping[str, np.ndarray],
    params: PairwiseHistParams,
    population_rows: int | None = None,
    null_masks: Mapping[str, np.ndarray] | None = None,
    initial_edges: Mapping[str, np.ndarray] | None = None,
    columns: list[str] | None = None,
    build_pairs: bool = True,
) -> PairwiseHist:
    """Algorithm 1: build the full PairwiseHist synopsis.

    Parameters
    ----------
    codes:
        Mapping of column name to integer-encoded (pre-processed) values.
    params:
        Construction parameters (``Ns``, ``M``, ``alpha``).
    population_rows:
        ``N`` — size of the full dataset the codes were drawn from (defaults
        to the length of the code arrays).
    null_masks:
        Optional per-column boolean masks of missing values; null rows are
        excluded from that column's histograms (SQL aggregate semantics).
    initial_edges:
        Optional per-column seed edges (e.g. GD bases) for the initial bins.
    columns:
        Column order; defaults to the order of ``codes``.
    build_pairs:
        Set to ``False`` to build only 1-d histograms (used by ablations).
    """
    columns = list(columns) if columns is not None else list(codes)
    if not columns:
        raise ValueError("cannot build a synopsis with no columns")
    num_rows = len(codes[columns[0]])
    population = population_rows if population_rows is not None else num_rows
    rows = _sample_indices(num_rows, params)

    sampled: dict[str, np.ndarray] = {}
    valid: dict[str, np.ndarray] = {}
    for name in columns:
        col = np.asarray(codes[name], dtype=float)[rows]
        if null_masks is not None and name in null_masks:
            mask = ~np.asarray(null_masks[name], dtype=bool)[rows]
        else:
            mask = np.isfinite(col)
        sampled[name] = col
        valid[name] = mask

    synopsis = PairwiseHist(
        params=params,
        columns=columns,
        population_rows=population,
        sample_rows=len(rows),
    )

    for name in columns:
        seeds = None
        if initial_edges is not None and name in initial_edges:
            seeds = np.asarray(initial_edges[name], dtype=float)
        synopsis.hist1d[name] = _build_histogram_1d(
            name, sampled[name][valid[name]], seeds, params
        )

    if build_pairs:
        for b in range(1, len(columns)):
            for a in range(b):
                col_a, col_b = columns[a], columns[b]
                both = valid[col_a] & valid[col_b]
                synopsis.hist2d[(col_a, col_b)] = _build_histogram_2d(
                    col_a,
                    col_b,
                    sampled[col_a][both],
                    sampled[col_b][both],
                    synopsis.hist1d[col_a],
                    synopsis.hist1d[col_b],
                    params,
                )
    return synopsis


# --------------------------------------------------------------------------- #
# Partitioned construction

#: Fewest partitions for which a process pool is worth its spawn/pickle
#: cost when the executor is chosen automatically.
PROCESS_EXECUTOR_MIN_PARTITIONS = 6


def default_executor(num_partitions: int) -> str:
    """Pick the executor for a partitioned build when none is forced.

    ``"process"`` buys real parallelism (one GIL per worker) but costs a
    pool spawn plus pickling every partition's decoded codes, so it only
    pays off when there are multiple cores *and* enough partitions to
    amortize the overhead.  Forking a process pool out of a multi-threaded
    service is also a classic deadlock source, so the automatic choice
    additionally requires a single-threaded process (bulk registration on
    the main thread — the case where the build is largest); concurrent
    services rebuilding a tail partition stay on the thread pool, whose
    numpy kernels release the GIL.  On platforms whose default
    multiprocessing start method is ``spawn`` (macOS, Windows) the
    automatic choice also stays on threads: spawn re-imports ``__main__``,
    which breaks any caller script without a ``__main__`` guard — a
    library default must not do that silently.  Pass
    ``executor="process"`` explicitly to override either restriction.
    """
    import multiprocessing
    import sys

    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:  # not fixed yet: the platform default will apply
        method = "fork" if sys.platform.startswith("linux") else "spawn"
    if (
        (os.cpu_count() or 1) > 1
        and num_partitions >= PROCESS_EXECUTOR_MIN_PARTITIONS
        and threading.active_count() == 1
        and method == "fork"
    ):
        return "process"
    return "thread"


@dataclass(frozen=True)
class PartitionInput:
    """Inputs for building one partition's synopsis.

    The same shapes :func:`build_pairwise_hist` takes, bundled per
    partition so a list of them can be fanned out to an executor.
    """

    codes: Mapping[str, np.ndarray]
    population_rows: int | None = None
    null_masks: Mapping[str, np.ndarray] | None = None
    initial_edges: Mapping[str, np.ndarray] | None = None


def snapshot_partition_input(store, partition) -> PartitionInput:
    """Decode one partition of a partitioned store into a build input.

    The returned :class:`PartitionInput` references only the (immutable,
    sealed) partition — not the store's mutable partition *list* — so the
    expensive synopsis build can run off-lock while a concurrent service
    keeps answering queries and even swaps that list underneath us.
    """
    codes, nulls = partition.decoded_codes()
    initial_edges = {
        name: partition.base_values(name)
        for name in store.column_order
        if not store.preprocessor[name].is_categorical
    }
    return PartitionInput(
        codes=codes,
        population_rows=partition.num_rows,
        null_masks=nulls,
        initial_edges=initial_edges,
    )


def partition_params(
    params: PairwiseHistParams, partition_rows: int, total_rows: int
) -> PairwiseHistParams:
    """Scale construction parameters down to one partition's share.

    Only ``Ns`` shrinks (proportionally to the partition's row count);
    ``M`` stays global.  Since the per-column bin budget is ``Ns / M``
    (Algorithm 1, line 4 and the refinement stop condition), this hands
    each partition a proportional slice of the whole table's bin budget:
    the union of the per-partition edges after the merge has monolithic
    granularity instead of ``num_partitions`` times it — which would blow
    up both build time and the merged 2-d grids.
    """
    fraction = partition_rows / total_rows if total_rows else 1.0
    cap = max(1, int(np.ceil(params.effective_initial_bins * fraction)))
    sample = params.sample_size
    if sample is not None:
        sample = max(1, int(np.ceil(sample * fraction)))
    return replace(params, sample_size=sample, max_initial_bins=cap)


def _build_partition(
    part: PartitionInput,
    params: PairwiseHistParams,
    columns: list[str] | None,
    build_pairs: bool,
    total_rows: int,
) -> PairwiseHist:
    """Build one partition's synopsis (top-level so process pools can pickle it)."""
    first = next(iter(part.codes.values()))
    rows = part.population_rows if part.population_rows is not None else len(first)
    return build_pairwise_hist(
        part.codes,
        partition_params(params, rows, total_rows),
        population_rows=rows,
        null_masks=part.null_masks,
        initial_edges=part.initial_edges,
        columns=columns,
        build_pairs=build_pairs,
    )


def build_partition_synopses(
    partitions: Sequence[PartitionInput],
    params: PairwiseHistParams,
    columns: list[str] | None = None,
    build_pairs: bool = True,
    max_workers: int | None = None,
    executor: str | None = None,
    total_rows: int | None = None,
) -> list[PairwiseHist]:
    """Build one synopsis per partition, fanning out via ``concurrent.futures``.

    ``executor`` selects ``"thread"`` (numpy's histogram and sort kernels
    release the GIL), ``"process"`` (full parallelism, inputs are pickled
    to workers) or ``"serial"`` (no pool; also used automatically for a
    single partition).  The default (``None``) picks dynamically via
    :func:`default_executor`: a process pool on multi-core hosts when the
    partition count amortizes its spawn cost, a thread pool otherwise.
    ``total_rows`` is the row count the per-partition bin budget is scaled
    against; pass the whole table's size when rebuilding a subset of its
    partitions (e.g. the tail after an append) so those partitions don't
    get the full table's budget.
    """
    if not partitions:
        raise ValueError("cannot build a synopsis from zero partitions")
    if total_rows is None:
        total_rows = sum(
            p.population_rows if p.population_rows is not None else len(next(iter(p.codes.values())))
            for p in partitions
        )
    if executor is None:
        executor = default_executor(len(partitions))
    if executor not in ("thread", "process", "serial"):
        raise ValueError(f"unknown executor kind {executor!r}")
    if executor == "serial" or len(partitions) == 1:
        return [
            _build_partition(part, params, columns, build_pairs, total_rows)
            for part in partitions
        ]
    workers = max_workers or min(len(partitions), os.cpu_count() or 1)
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        futures = [
            pool.submit(_build_partition, part, params, columns, build_pairs, total_rows)
            for part in partitions
        ]
        return [future.result() for future in futures]


def build_partitioned_hist(
    partitions: Sequence[PartitionInput],
    params: PairwiseHistParams,
    columns: list[str] | None = None,
    build_pairs: bool = True,
    max_workers: int | None = None,
    executor: str | None = None,
) -> PairwiseHist:
    """Build per-partition synopses in parallel and merge them into one."""
    synopses = build_partition_synopses(
        partitions, params, columns, build_pairs, max_workers, executor
    )
    return PairwiseHist.merge(synopses, params=params)
