"""Compressed columnar store combining the pre-processor and GreedyGD.

:class:`CompressedStore` is the "Compressed Data" block of Fig. 2: it owns
the per-column transforms, the deduplicated bases, the per-row base ids and
deviations, supports incremental appends (red arrows in Fig. 2), random row
access, lossless reconstruction and storage accounting — and it exposes the
bases in each column's compressed domain so PairwiseHist can use them as
initial histogram bin edges (§3, "PairwiseHist").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.schema import TableSchema
from ..data.table import Table
from .greedygd import GDSplit, GreedyGD, GreedyGDConfig
from .preprocessor import Preprocessor


@dataclass
class CompressedStore:
    """GreedyGD-compressed representation of a single table."""

    table_name: str
    schema: TableSchema
    preprocessor: Preprocessor
    split: GDSplit
    null_masks: dict[str, np.ndarray]
    _column_order: list[str] = field(default_factory=list)
    #: Memoized full decode of the split (bases + deviations -> codes).  The
    #: reconstruction is read-only and shared by every accessor; ``append``
    #: returns a fresh store, so the cache never outlives its split.
    _decoded: np.ndarray | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def compress(cls, table: Table, config: GreedyGDConfig | None = None) -> "CompressedStore":
        """Pre-process and compress a table."""
        preprocessor = Preprocessor.fit(table)
        codes, nulls = preprocessor.transform_table(table)
        order = table.column_names
        matrix = np.column_stack([codes[name] for name in order]) if order else np.empty((table.num_rows, 0), dtype=np.int64)
        bits = preprocessor.bits_per_column()
        total_bits = np.array([bits[name] for name in order], dtype=np.int64)
        split = GreedyGD(config or GreedyGDConfig()).compress(matrix, total_bits)
        return cls(
            table_name=table.name,
            schema=table.schema,
            preprocessor=preprocessor,
            split=split,
            null_masks=nulls,
            _column_order=order,
        )

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def num_rows(self) -> int:
        return self.split.num_rows

    @property
    def num_bases(self) -> int:
        return self.split.num_bases

    @property
    def column_order(self) -> list[str]:
        return list(self._column_order)

    def compressed_bytes(self) -> int:
        """Compressed payload size (bases + ids + deviations + null bitmaps)."""
        null_bits = sum(len(mask) for mask in self.null_masks.values())
        return self.split.compressed_bytes() + (null_bits + 7) // 8

    def compression_ratio(self, original_bytes: int) -> float:
        """Original size divided by compressed size."""
        compressed = self.compressed_bytes()
        return original_bytes / compressed if compressed else float("inf")

    # ------------------------------------------------------------------ #
    # Access

    def _decoded_matrix(self) -> np.ndarray:
        """Full decoded code matrix, computed once and memoized."""
        if self._decoded is None:
            self._decoded = self.split.reconstruct()
        return self._decoded

    def column_codes(self, name: str) -> np.ndarray:
        """Integer codes of one column, reconstructed from bases + deviations."""
        idx = self._column_order.index(name)
        return self._decoded_matrix()[:, idx]

    def base_values(self, name: str) -> np.ndarray:
        """Distinct base values of one column, shifted back to the code domain.

        These are the "bases" that seed PairwiseHist's initial bin edges: each
        base represents the most significant bits of the column, so shifting
        back up gives a coarse grid over the column's value range.
        """
        idx = self._column_order.index(name)
        shift = int(self.split.deviation_bits[idx])
        values = np.unique(self.split.bases[:, idx]) << shift
        return values.astype(np.int64)

    def reconstruct_rows(self, row_indices: np.ndarray | None = None) -> Table:
        """Losslessly reconstruct (a subset of) the original table."""
        if row_indices is None:
            row_indices = np.arange(self.num_rows)
            codes = self._decoded_matrix()
        else:
            codes = self.split.reconstruct(row_indices)
        columns: dict[str, np.ndarray] = {}
        for idx, name in enumerate(self._column_order):
            transform = self.preprocessor[name]
            mask = self.null_masks[name][row_indices]
            columns[name] = transform.inverse_array(codes[:, idx], mask)
        return Table(name=self.table_name, schema=self.schema, columns=columns)

    def decoded_codes(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """All column codes plus null masks (input format for PairwiseHist)."""
        reconstructed = self._decoded_matrix()
        codes = {name: reconstructed[:, i] for i, name in enumerate(self._column_order)}
        return codes, self.null_masks

    # ------------------------------------------------------------------ #
    # Updates

    def append(self, table: Table) -> "CompressedStore":
        """Add new rows (same schema) to the compressed store.

        Returns a new store whose decoded-matrix cache starts empty, so a
        stale reconstruction can never be served after an append.
        """
        if table.schema.names != self.schema.names:
            raise ValueError("appended rows must match the store schema")
        codes, nulls = self.preprocessor.transform_table(table)
        matrix = np.column_stack([codes[name] for name in self._column_order])
        new_split = GreedyGD().append(self.split, matrix)
        merged_nulls = {
            name: np.concatenate([self.null_masks[name], nulls[name]])
            for name in self._column_order
        }
        return CompressedStore(
            table_name=self.table_name,
            schema=self.schema,
            preprocessor=self.preprocessor,
            split=new_split,
            null_masks=merged_nulls,
            _column_order=self._column_order,
        )
