"""Generalized Deduplication (GreedyGD) compression substrate."""

from .preprocessor import ColumnTransform, Preprocessor
from .greedygd import GDSplit, GreedyGD, GreedyGDConfig, select_deviation_bits
from .store import CompressedStore
from .partitioned import DEFAULT_PARTITION_SIZE, PartitionedStore

__all__ = [
    "ColumnTransform",
    "Preprocessor",
    "GDSplit",
    "GreedyGD",
    "GreedyGDConfig",
    "select_deviation_bits",
    "CompressedStore",
    "PartitionedStore",
    "DEFAULT_PARTITION_SIZE",
]
