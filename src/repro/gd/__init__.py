"""Generalized Deduplication (GreedyGD) compression substrate."""

from .preprocessor import ColumnTransform, Preprocessor
from .greedygd import GDSplit, GreedyGD, GreedyGDConfig, select_deviation_bits
from .store import CompressedStore

__all__ = [
    "ColumnTransform",
    "Preprocessor",
    "GDSplit",
    "GreedyGD",
    "GreedyGDConfig",
    "select_deviation_bits",
    "CompressedStore",
]
