"""Partitioned GreedyGD storage: fixed-size shards of one logical table.

The monolithic :class:`~repro.gd.store.CompressedStore` re-runs the greedy
bit-selection search over every row on each rebuild, so appends get more
expensive as the table grows.  :class:`PartitionedStore` shards rows into
fixed-size partitions, each an independent :class:`CompressedStore` over a
*shared* pre-processor (so every partition lives in the same code domain
and per-partition synopses can be merged).  ``append()`` only touches the
tail: it tops up the last partition with GreedyGD's incremental append and
compresses overflow rows into fresh partitions, leaving every sealed
partition — and its synopsis — untouched.  This is the partitioned-block
architecture that machine-generated-data stores (GreedyGD itself, RLZ web
collections) use to bound update cost and unlock parallel processing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..data.schema import TableSchema
from ..data.table import Table
from ..storage.codec import (
    pack_bool_array,
    pack_ndarray8,
    pack_short_string,
    unpack_bool_array,
    unpack_ndarray8,
    unpack_short_string,
)
from .greedygd import GDSplit, GreedyGD, GreedyGDConfig
from .preprocessor import Preprocessor
from .store import CompressedStore

#: Default rows per partition — small enough that a tail rebuild is cheap,
#: large enough that GreedyGD still finds shared bases.
DEFAULT_PARTITION_SIZE = 65_536


@dataclass
class PartitionedStore:
    """A list of independently-compressed partitions of one table."""

    table_name: str
    schema: TableSchema
    preprocessor: Preprocessor
    partition_size: int
    partitions: list[CompressedStore] = field(default_factory=list)
    _column_order: list[str] = field(default_factory=list)
    _config: GreedyGDConfig = field(default_factory=GreedyGDConfig)

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def compress(
        cls,
        table: Table,
        partition_size: int = DEFAULT_PARTITION_SIZE,
        config: GreedyGDConfig | None = None,
    ) -> "PartitionedStore":
        """Pre-process a table once, then compress it partition by partition."""
        if partition_size < 1:
            raise ValueError("partition_size must be positive")
        config = config or GreedyGDConfig()
        preprocessor = Preprocessor.fit(table)
        store = cls(
            table_name=table.name,
            schema=table.schema,
            preprocessor=preprocessor,
            partition_size=partition_size,
            _column_order=table.column_names,
            _config=config,
        )
        for start in range(0, table.num_rows, partition_size):
            chunk = table.select_rows(np.arange(start, min(start + partition_size, table.num_rows)))
            store.partitions.append(store._compress_partition(chunk))
        if not store.partitions:
            raise ValueError("cannot build a partitioned store from an empty table")
        return store

    def _compress_partition(
        self, chunk: Table, warm_start: np.ndarray | None = None
    ) -> CompressedStore:
        """Compress one chunk with the shared pre-processor.

        ``warm_start`` seeds the GreedyGD bit-selection search (the append
        path passes the previous tail partition's deviation bits).
        """
        codes, nulls = self.preprocessor.transform_table(chunk)
        matrix = (
            np.column_stack([codes[name] for name in self._column_order])
            if self._column_order
            else np.empty((chunk.num_rows, 0), dtype=np.int64)
        )
        bits = self.preprocessor.bits_per_column()
        total_bits = np.array([bits[name] for name in self._column_order], dtype=np.int64)
        split = GreedyGD(self._config).compress(matrix, total_bits, warm_start)
        return CompressedStore(
            table_name=self.table_name,
            schema=self.schema,
            preprocessor=self.preprocessor,
            split=split,
            null_masks=nulls,
            _column_order=list(self._column_order),
        )

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self.partitions)

    @property
    def column_order(self) -> list[str]:
        return list(self._column_order)

    def partition_row_offsets(self) -> np.ndarray:
        """Global row index at which each partition starts (plus a final total)."""
        sizes = [p.num_rows for p in self.partitions]
        return np.concatenate([[0], np.cumsum(sizes)])

    def compressed_bytes(self) -> int:
        """Compressed payload size summed over all partitions."""
        return sum(p.compressed_bytes() for p in self.partitions)

    def compression_ratio(self, original_bytes: int) -> float:
        compressed = self.compressed_bytes()
        return original_bytes / compressed if compressed else float("inf")

    # ------------------------------------------------------------------ #
    # Access

    def base_values(self, name: str) -> np.ndarray:
        """Distinct GD base values of one column across all partitions."""
        values = np.concatenate([p.base_values(name) for p in self.partitions])
        return np.unique(values)

    def reconstruct_rows(self, row_indices: np.ndarray | None = None) -> Table:
        """Losslessly reconstruct (a subset of) the original table.

        Global row indices are mapped onto the owning partitions; the
        result preserves the requested order.
        """
        if row_indices is None:
            tables = [p.reconstruct_rows() for p in self.partitions]
            out = tables[0]
            for extra in tables[1:]:
                out = out.concat(extra)
            return out
        row_indices = np.asarray(row_indices, dtype=int)
        offsets = self.partition_row_offsets()
        owner = np.searchsorted(offsets, row_indices, side="right") - 1
        columns = {name: [] for name in self._column_order}
        pieces = []
        for rank, part in enumerate(self.partitions):
            local = row_indices[owner == rank] - offsets[rank]
            if local.size:
                pieces.append((np.flatnonzero(owner == rank), part.reconstruct_rows(local)))
        order = np.argsort(np.concatenate([idx for idx, _ in pieces])) if pieces else np.array([], dtype=int)
        for name in self._column_order:
            merged = (
                np.concatenate([piece.column(name) for _, piece in pieces])
                if pieces
                else np.array([])
            )
            columns[name] = merged[order]
        return Table(name=self.table_name, schema=self.schema, columns=columns)

    # ------------------------------------------------------------------ #
    # Updates

    def append(self, table: Table) -> list[int]:
        """Append rows, compressing only the tail; returns affected partitions.

        The last partition is topped up to ``partition_size`` with
        GreedyGD's incremental append (new bases only, no re-splitting);
        remaining rows are compressed into fresh partitions.  Sealed
        partitions are never touched, so their synopses stay valid — the
        returned indices tell callers exactly which partitions to refresh.

        The append is *swap-safe*: the new partition list is assembled on
        the side and published with a single atomic assignment, so a
        concurrent reader iterating ``partitions`` sees either the old or
        the new list, never a half-appended one.
        """
        if table.schema.names != self.schema.names:
            raise ValueError("appended rows must match the store schema")
        if table.num_rows == 0:
            return []
        partitions = list(self.partitions)
        affected: list[int] = []
        consumed = 0
        tail = partitions[-1]
        capacity = self.partition_size - tail.num_rows
        if capacity > 0:
            take = min(capacity, table.num_rows)
            partitions[-1] = tail.append(table.select_rows(np.arange(take)))
            affected.append(len(partitions) - 1)
            consumed = take
        while consumed < table.num_rows:
            take = min(self.partition_size, table.num_rows - consumed)
            chunk = table.select_rows(np.arange(consumed, consumed + take))
            warm_start = (
                partitions[-1].split.deviation_bits
                if self._config.warm_start_appends
                else None
            )
            partitions.append(self._compress_partition(chunk, warm_start))
            affected.append(len(partitions) - 1)
            consumed += take
        self.partitions = partitions
        return affected


# --------------------------------------------------------------------------- #
# Partition-level binary persistence

_PARTITION_MAGIC = b"GDP1"

# The on-disk framing is the shared helper set in ``repro.storage.codec``
# (8-byte-dtype ndarray frames, 2-byte-length strings, bit-packed masks);
# byte layout is pinned by the framing round-trip tests.


def dump_partition(partition: CompressedStore) -> bytes:
    """Binary blob of one sealed partition: GD split arrays + null bitmaps.

    The blob is self-contained *given* the table-level context (schema,
    shared pre-processor, column order) that the snapshot catalog stores
    once per table — persisting it per partition would duplicate it
    hundreds of times for no benefit.
    """
    split = partition.split
    parts = [_PARTITION_MAGIC]
    for arr in (
        split.bases,
        split.base_ids,
        split.deviations,
        split.deviation_bits,
        split.total_bits,
    ):
        parts.append(pack_ndarray8(arr))
    parts.append(struct.pack("<I", len(partition._column_order)))
    for name in partition._column_order:
        parts.append(pack_short_string(name))
        parts.append(pack_bool_array(partition.null_masks[name]))
    return b"".join(parts)


def load_partition(
    payload: bytes,
    table_name: str,
    schema: TableSchema,
    preprocessor: Preprocessor,
) -> CompressedStore:
    """Inverse of :func:`dump_partition` (table-level context supplied)."""
    buffer = memoryview(payload)
    if bytes(buffer[:4]) != _PARTITION_MAGIC:
        raise ValueError("not a GD partition payload (bad magic)")
    offset = 4
    arrays = []
    for _ in range(5):
        arr, offset = unpack_ndarray8(buffer, offset)
        arrays.append(arr)
    bases, base_ids, deviations, deviation_bits, total_bits = arrays
    (num_columns,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    column_order: list[str] = []
    null_masks: dict[str, np.ndarray] = {}
    for _ in range(num_columns):
        name, offset = unpack_short_string(buffer, offset)
        mask, offset = unpack_bool_array(buffer, offset)
        column_order.append(name)
        null_masks[name] = mask
    split = GDSplit(
        bases=bases,
        base_ids=base_ids,
        deviations=deviations,
        deviation_bits=deviation_bits,
        total_bits=total_bits,
    )
    return CompressedStore(
        table_name=table_name,
        schema=schema,
        preprocessor=preprocessor,
        split=split,
        null_masks=null_masks,
        _column_order=column_order,
    )
