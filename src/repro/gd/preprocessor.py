"""GreedyGD pre-processing (§3 of the paper, "Data Compression").

Every column is transformed independently into a non-negative integer
domain before compression:

* numeric / datetime columns — floating-point values are scaled to
  integers (``10.22 -> 1022``) and the column minimum is subtracted,
* categorical columns — values are frequency-ranked (most common value
  encoded as 0, the second most common as 1, ...),
* missing values — encoded as a reserved code one past the largest valid
  code, with the null positions also exposed as a mask.

The same transform must be applied to query predicate literals at query
time (Fig. 7, "GreedyGD pre-process") and inverted when converting
PairwiseHist estimates back to the original data domain (Fig. 2,
"Aggregation Transform").  :class:`ColumnTransform` therefore exposes
``transform_value`` / ``inverse_value`` alongside the bulk array methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.schema import ColumnSchema
from ..data.table import Table


@dataclass
class ColumnTransform:
    """Invertible affine / dictionary transform of one column."""

    name: str
    is_categorical: bool
    scale: float = 1.0
    offset: float = 0.0
    categories: list[str] = field(default_factory=list)
    missing_code: int = 0
    max_code: int = 0

    # ------------------------------------------------------------------ #
    # Scalar transforms (used on predicate literals and query results)

    def transform_value(self, value) -> float:
        """Map an original-domain value into the integer compressed domain."""
        if self.is_categorical:
            try:
                return float(self.categories.index(str(value)))
            except ValueError:
                return -1.0
        return (float(value) - self.offset) * self.scale

    def inverse_value(self, value: float) -> float | str:
        """Map a compressed-domain value back to the original domain."""
        if self.is_categorical:
            code = int(round(value))
            if 0 <= code < len(self.categories):
                return self.categories[code]
            return "<unknown>"
        return value / self.scale + self.offset

    # ------------------------------------------------------------------ #
    # Bulk transforms

    def transform_array(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Transform a column array; returns ``(codes, null_mask)``.

        ``codes`` is an int64 array in which nulls hold :attr:`missing_code`.
        """
        if self.is_categorical:
            null_mask = np.array([v is None for v in values], dtype=bool)
            index = {label: i for i, label in enumerate(self.categories)}
            codes = np.array(
                [index.get(v, self.missing_code) if v is not None else self.missing_code for v in values],
                dtype=np.int64,
            )
            return codes, null_mask
        null_mask = ~np.isfinite(values)
        scaled = (np.where(null_mask, self.offset, values) - self.offset) * self.scale
        codes = np.rint(scaled).astype(np.int64)
        codes[null_mask] = self.missing_code
        return codes, null_mask

    def inverse_array(self, codes: np.ndarray, null_mask: np.ndarray | None = None) -> np.ndarray:
        """Inverse of :meth:`transform_array` (categoricals become objects)."""
        if self.is_categorical:
            out = np.empty(len(codes), dtype=object)
            for i, code in enumerate(codes):
                if null_mask is not None and null_mask[i]:
                    out[i] = None
                elif 0 <= code < len(self.categories):
                    out[i] = self.categories[code]
                else:
                    out[i] = None
            return out
        values = codes.astype(float) / self.scale + self.offset
        if self.scale != 1.0:
            # ``scale`` is always ``10 ** decimals``; snapping back onto
            # the decimal grid makes reconstruction bit-identical to the
            # quantized ingest values (the division re-introduces a ULP
            # of float error that would otherwise leak into exact
            # recomputations, e.g. the accuracy auditor's ground truth).
            values = np.round(values, int(round(np.log10(self.scale))))
        if null_mask is not None:
            values = values.copy()
            values[null_mask] = np.nan
        return values


@dataclass
class Preprocessor:
    """Per-table collection of :class:`ColumnTransform` objects."""

    transforms: dict[str, ColumnTransform] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @classmethod
    def fit(cls, table: Table) -> "Preprocessor":
        """Learn per-column transforms from a table (one pass, no extra storage)."""
        transforms: dict[str, ColumnTransform] = {}
        for cschema in table.schema:
            transforms[cschema.name] = cls._fit_column(cschema, table.column(cschema.name))
        return cls(transforms)

    @staticmethod
    def _fit_column(cschema: ColumnSchema, values: np.ndarray) -> ColumnTransform:
        if cschema.is_categorical:
            non_null = [v for v in values if v is not None]
            if non_null:
                labels, counts = np.unique(np.asarray(non_null, dtype=object), return_counts=True)
                order = np.argsort(-counts, kind="stable")
                categories = [str(labels[i]) for i in order]
            else:
                categories = []
            max_code = len(categories) - 1 if categories else 0
            return ColumnTransform(
                name=cschema.name,
                is_categorical=True,
                categories=categories,
                missing_code=len(categories),
                max_code=max(max_code, 0),
            )
        finite = values[np.isfinite(values)]
        offset = float(finite.min()) if finite.size else 0.0
        scale = float(10 ** cschema.decimals)
        if finite.size:
            max_code = int(round((float(finite.max()) - offset) * scale))
        else:
            max_code = 0
        return ColumnTransform(
            name=cschema.name,
            is_categorical=False,
            scale=scale,
            offset=offset,
            missing_code=max_code + 1,
            max_code=max_code,
        )

    # ------------------------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self.transforms

    def __getitem__(self, name: str) -> ColumnTransform:
        return self.transforms[name]

    @property
    def column_names(self) -> list[str]:
        return list(self.transforms)

    def transform_table(self, table: Table) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Transform every column; returns ``(codes_by_column, null_masks)``."""
        codes: dict[str, np.ndarray] = {}
        nulls: dict[str, np.ndarray] = {}
        for name, transform in self.transforms.items():
            codes[name], nulls[name] = transform.transform_array(table.column(name))
        return codes, nulls

    def transform_literal(self, column: str, value) -> float:
        """Transform one predicate literal into the compressed domain."""
        return self.transforms[column].transform_value(value)

    def inverse_literal(self, column: str, value: float):
        """Inverse-transform a value for the given column."""
        return self.transforms[column].inverse_value(value)

    def bits_per_column(self) -> dict[str, int]:
        """Number of bits needed to store each column's largest code."""
        out: dict[str, int] = {}
        for name, transform in self.transforms.items():
            largest = max(transform.max_code, transform.missing_code, 1)
            out[name] = max(1, int(largest).bit_length())
        return out
