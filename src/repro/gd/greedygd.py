"""GreedyGD: Generalized Deduplication with greedy base-bit selection.

Generalized Deduplication (Fig. 3 of the paper) splits every data chunk
(here: a table row, integer-encoded by the :mod:`~repro.gd.preprocessor`)
into a *base* containing the most significant bits of each attribute and a
*deviation* containing the remaining low-order bits.  Bases are
deduplicated; deviations are stored verbatim together with the id of their
base.  Compression is achieved when many rows share a base.

GreedyGD chooses *how many* low-order bits of each column go to the
deviation.  The greedy search implemented here follows the published
algorithm's structure: starting from "all bits in the base", it repeatedly
moves one more bit of whichever column most reduces the estimated
compressed size, and stops when no single move helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GreedyGDConfig:
    """Tuning knobs for the greedy bit-selection search."""

    #: Maximum rows used to evaluate candidate configurations (the search is
    #: quadratic in the number of columns, so it runs on a sample).
    search_rows: int = 20_000
    #: Upper limit on deviation bits per column (guards the search loop).
    max_deviation_bits: int = 62
    #: Stop as soon as an iteration fails to improve the estimated size.
    early_stop: bool = True
    #: Seed the bit-selection search for fresh tail partitions from the
    #: previous tail partition's deviation bits (append path only).  Rows
    #: arriving on one stream share a distribution, so the warm start is
    #: usually already at (or one move from) the greedy optimum — the
    #: search converges in a couple of iterations instead of walking up
    #: from zero deviation bits.
    warm_start_appends: bool = True


@dataclass
class GDSplit:
    """Result of compressing a block of integer-encoded rows."""

    #: Unique bases, shape ``(num_bases, num_columns)``; column ``c`` holds
    #: ``code >> deviation_bits[c]``.
    bases: np.ndarray
    #: Index of the base for every row, shape ``(num_rows,)``.
    base_ids: np.ndarray
    #: Deviation values per row and column, shape ``(num_rows, num_columns)``.
    deviations: np.ndarray
    #: Number of low-order bits assigned to the deviation, per column.
    deviation_bits: np.ndarray
    #: Number of bits required per column code (base bits + deviation bits).
    total_bits: np.ndarray

    @property
    def num_bases(self) -> int:
        return int(self.bases.shape[0])

    @property
    def num_rows(self) -> int:
        return int(self.base_ids.shape[0])

    def compressed_bits(self) -> int:
        """Estimated compressed payload size in bits (bases + ids + deviations)."""
        base_bits = int((self.total_bits - self.deviation_bits).sum())
        dev_bits = int(self.deviation_bits.sum())
        id_bits = max(1, int(np.ceil(np.log2(max(self.num_bases, 2)))))
        return self.num_bases * base_bits + self.num_rows * (dev_bits + id_bits)

    def compressed_bytes(self) -> int:
        return (self.compressed_bits() + 7) // 8

    def reconstruct(self, row_indices: np.ndarray | None = None) -> np.ndarray:
        """Losslessly reconstruct integer codes for the given rows (all by default)."""
        if row_indices is None:
            row_indices = np.arange(self.num_rows)
        rows = np.atleast_1d(np.asarray(row_indices, dtype=int))
        bases = self.bases[self.base_ids[rows]]
        return (bases << self.deviation_bits) | self.deviations[rows]


def _estimate_bits(
    codes: np.ndarray, deviation_bits: np.ndarray, total_bits: np.ndarray
) -> tuple[int, int]:
    """Estimated compressed size (bits) and base count for a bit assignment."""
    shifted = codes >> deviation_bits
    bases = np.unique(shifted, axis=0)
    num_bases = bases.shape[0]
    num_rows = codes.shape[0]
    base_bits = int((total_bits - deviation_bits).sum())
    dev_bits = int(deviation_bits.sum())
    id_bits = max(1, int(np.ceil(np.log2(max(num_bases, 2)))))
    size = num_bases * base_bits + num_rows * (dev_bits + id_bits)
    return size, num_bases


def select_deviation_bits(
    codes: np.ndarray,
    total_bits: np.ndarray,
    config: GreedyGDConfig | None = None,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy search for the per-column deviation bit counts.

    Parameters
    ----------
    codes:
        Integer-encoded rows, shape ``(rows, columns)``.
    total_bits:
        Bits needed per column (from the pre-processor).
    warm_start:
        Optional starting assignment (e.g. the previous tail partition's
        deviation bits on the append path).  A cold start only ever *adds*
        bits — starting from all-in-the-base, removal never helps.  A warm
        start may overshoot what the new rows want, so the warm search is
        bidirectional: each iteration takes the single best +1 / -1 move.
    """
    config = config or GreedyGDConfig()
    num_rows, num_cols = codes.shape
    if num_rows > config.search_rows:
        step = max(1, num_rows // config.search_rows)
        sample = codes[::step]
    else:
        sample = codes
    limits = np.minimum(total_bits, config.max_deviation_bits)
    if warm_start is not None:
        deviation_bits = np.clip(np.asarray(warm_start, dtype=np.int64), 0, limits)
        moves = (1, -1)
    else:
        deviation_bits = np.zeros(num_cols, dtype=np.int64)
        moves = (1,)
    best_size, _ = _estimate_bits(sample, deviation_bits, total_bits)
    improved = True
    while improved:
        improved = False
        best_candidate = None
        for col in range(num_cols):
            for move in moves:
                next_bits = deviation_bits[col] + move
                if next_bits < 0 or next_bits > limits[col]:
                    continue
                candidate = deviation_bits.copy()
                candidate[col] = next_bits
                size, _ = _estimate_bits(sample, candidate, total_bits)
                if size < best_size:
                    best_size = size
                    best_candidate = candidate
        if best_candidate is not None:
            deviation_bits = best_candidate
            improved = True
        elif not config.early_stop:
            break
    return deviation_bits


@dataclass
class GreedyGD:
    """End-to-end GreedyGD compressor over integer-encoded rows."""

    config: GreedyGDConfig = field(default_factory=GreedyGDConfig)

    def compress(
        self,
        codes: np.ndarray,
        total_bits: np.ndarray,
        warm_start: np.ndarray | None = None,
    ) -> GDSplit:
        """Split rows into deduplicated bases and verbatim deviations.

        ``warm_start`` seeds the bit-selection search (see
        :func:`select_deviation_bits`); the split itself is exact for
        whatever assignment the search lands on.
        """
        codes = np.asarray(codes, dtype=np.int64)
        total_bits = np.asarray(total_bits, dtype=np.int64)
        if codes.ndim != 2:
            raise ValueError("codes must be a 2-d array of shape (rows, columns)")
        deviation_bits = select_deviation_bits(codes, total_bits, self.config, warm_start)
        shifted = codes >> deviation_bits
        masks = (np.int64(1) << deviation_bits) - 1
        deviations = codes & masks
        bases, base_ids = np.unique(shifted, axis=0, return_inverse=True)
        return GDSplit(
            bases=bases,
            base_ids=base_ids.astype(np.int64),
            deviations=deviations,
            deviation_bits=deviation_bits,
            total_bits=total_bits,
        )

    def append(self, split: GDSplit, new_codes: np.ndarray) -> GDSplit:
        """Incrementally add rows to an existing split (new bases appended)."""
        new_codes = np.asarray(new_codes, dtype=np.int64)
        shifted = new_codes >> split.deviation_bits
        masks = (np.int64(1) << split.deviation_bits) - 1
        deviations = new_codes & masks
        base_lookup = {tuple(row): i for i, row in enumerate(split.bases)}
        bases = list(map(tuple, split.bases))
        new_ids = np.empty(len(new_codes), dtype=np.int64)
        for i, row in enumerate(map(tuple, shifted)):
            if row not in base_lookup:
                base_lookup[row] = len(bases)
                bases.append(row)
            new_ids[i] = base_lookup[row]
        return GDSplit(
            bases=np.asarray(bases, dtype=np.int64),
            base_ids=np.concatenate([split.base_ids, new_ids]),
            deviations=np.vstack([split.deviations, deviations]),
            deviation_bits=split.deviation_bits,
            total_bits=split.total_bits,
        )
