"""Small shared utilities (bit-level I/O, timing helpers)."""

from .bitstream import BitReader, BitWriter
from .timing import Timer

__all__ = ["BitReader", "BitWriter", "Timer"]
