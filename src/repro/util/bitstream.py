"""Bit-level writer / reader used by the GD compressor and the synopsis codec.

Both GreedyGD (base / deviation packing) and the PairwiseHist storage
encoding of §4.3 (Golomb-coded sparse bin counts, fixed-width dense counts)
need sub-byte framing.  Bits are staged as numpy ``uint8`` arrays and the
byte rendering / parsing goes through ``np.packbits`` / ``np.unpackbits``,
so the Golomb–Rice hot path of the compressed storage accounting runs as
batch array operations instead of per-bit Python loops.
"""

from __future__ import annotations

import numpy as np

_ONE = np.uint64(1)


def _value_bits(value: int, width: int) -> np.ndarray:
    """Big-endian bit array of ``value`` in a fixed ``width`` field."""
    if width <= 64:
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        return ((np.uint64(value) >> shifts) & _ONE).astype(np.uint8)
    # Arbitrary-precision fallback for fields wider than a machine word.
    return np.fromiter(
        ((value >> shift) & 1 for shift in range(width - 1, -1, -1)),
        dtype=np.uint8,
        count=width,
    )


class BitWriter:
    """Accumulates bits most-significant-first and renders them as bytes."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._length

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._chunks.append(np.array([1 if bit else 0], dtype=np.uint8))
        self._length += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian bit field."""
        if value < 0:
            raise ValueError("cannot write negative values")
        if width < 0:
            raise ValueError("width must be non-negative")
        if width and value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            return
        self._chunks.append(_value_bits(value, width))
        self._length += width

    def write_bits_array(self, values: np.ndarray, width: int) -> None:
        """Append every value of an array as a fixed-width big-endian field.

        Batch equivalent of calling :meth:`write_bits` per element; the bit
        matrix is produced in one vectorized shift instead of a Python loop.
        """
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0 or len(values) == 0:
            return
        values = np.asarray(values)
        if np.any(values < 0):
            raise ValueError("cannot write negative values")
        if width < 64 and np.any(values >= (1 << width)):
            raise ValueError(f"some values do not fit in {width} bits")
        if width > 64:
            for value in values.tolist():
                self.write_bits(int(value), width)
            return
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((values.astype(np.uint64)[:, None] >> shifts[None, :]) & _ONE).astype(np.uint8)
        self._chunks.append(bits.ravel())
        self._length += width * len(values)

    def write_unary(self, value: int) -> None:
        """Append ``value`` ones followed by a terminating zero."""
        if value < 0:
            raise ValueError("cannot unary-encode negative values")
        chunk = np.ones(value + 1, dtype=np.uint8)
        chunk[-1] = 0
        self._chunks.append(chunk)
        self._length += value + 1

    def getvalue(self) -> bytes:
        """Render the accumulated bits as bytes, zero-padded to a byte boundary."""
        if not self._chunks:
            return b""
        bits = np.concatenate(self._chunks)
        return np.packbits(bits).tobytes()


class BitReader:
    """Reads bits most-significant-first from a byte string.

    The whole buffer is unpacked to a ``uint8`` bit array once at
    construction so fixed-width and unary reads are array slices rather
    than per-bit shifts.
    """

    #: Window size used when scanning for the terminating zero of a unary code.
    _SCAN = 256

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read position, in bits."""
        return self._pos

    @property
    def remaining_bits(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` past the end of the stream."""
        if self._pos >= len(self._bits):
            raise EOFError("bit stream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read a fixed-width big-endian bit field."""
        if width == 0:
            return 0
        if self._pos + width > len(self._bits):
            raise EOFError("bit stream exhausted")
        bits = self._bits[self._pos : self._pos + width]
        self._pos += width
        if width <= 64:
            shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
            return int((bits.astype(np.uint64) << shifts).sum(dtype=np.uint64))
        value = 0
        for bit in bits.tolist():
            value = (value << 1) | bit
        return value

    def read_bits_array(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` consecutive fixed-width fields as a ``uint64`` array.

        Batch equivalent of calling :meth:`read_bits` per field.
        """
        if count == 0 or width == 0:
            self._pos += count * width
            return np.zeros(count, dtype=np.uint64)
        total = count * width
        if self._pos + total > len(self._bits):
            raise EOFError("bit stream exhausted")
        if width > 64:
            return np.array([self.read_bits(width) for _ in range(count)], dtype=object)
        bits = self._bits[self._pos : self._pos + total].reshape(count, width)
        self._pos += total
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        return (bits.astype(np.uint64) << shifts[None, :]).sum(axis=1, dtype=np.uint64)

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        start = self._pos
        scan = start
        while True:
            window = self._bits[scan : scan + self._SCAN]
            if window.size == 0:
                raise EOFError("bit stream exhausted")
            zeros = np.flatnonzero(window == 0)
            if zeros.size:
                terminator = scan + int(zeros[0])
                break
            scan += window.size
        self._pos = terminator + 1
        return terminator - start
