"""Bit-level writer / reader used by the GD compressor and the synopsis codec.

Both GreedyGD (base / deviation packing) and the PairwiseHist storage
encoding of §4.3 (Golomb-coded sparse bin counts, fixed-width dense counts)
need sub-byte framing.  The implementations here favour clarity over raw
speed; they are only used on synopsis-sized payloads.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits most-significant-first and renders them as bytes."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._bits.append(1 if bit else 0)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian bit field."""
        if value < 0:
            raise ValueError("cannot write negative values")
        if width < 0:
            raise ValueError("width must be non-negative")
        if width and value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` ones followed by a terminating zero."""
        if value < 0:
            raise ValueError("cannot unary-encode negative values")
        self._bits.extend([1] * value)
        self._bits.append(0)

    def getvalue(self) -> bytes:
        """Render the accumulated bits as bytes, zero-padded to a byte boundary."""
        out = bytearray()
        acc = 0
        count = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            count += 1
            if count == 8:
                out.append(acc)
                acc = 0
                count = 0
        if count:
            out.append(acc << (8 - count))
        return bytes(out)


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read position, in bits."""
        return self._pos

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` past the end of the stream."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise EOFError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        """Read a fixed-width big-endian bit field."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count
