"""DeepDB-style AQP baseline built on a Sum-Product Network.

Mirrors the behaviour the paper measured for DeepDB [20]:

* supports COUNT, SUM and AVG with AND-connected predicates,
* does *not* support OR between predicates (a limitation the paper's
  evaluation uncovered), nor MIN / MAX / MEDIAN / VAR,
* provides probabilistic bounds that can be over-confident,
* its model (the SPN) is noticeably larger than a PairwiseHist synopsis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..data.table import Table
from ..sql.ast import AggregateFunction, Condition, LogicalOp, PredicateNode, Query
from .base import BaselineResult, UnsupportedQueryError
from .spn import SpnLearnerConfig, SumProductNetwork

_Z99 = float(stats.norm.ppf(0.995))

_SUPPORTED = {AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG}


@dataclass
class DeepDBLike:
    """Sum-Product Network AQP engine with a DeepDB-compatible interface."""

    name: str = "DeepDB"
    sample_size: int | None = 100_000
    config: SpnLearnerConfig = field(default_factory=SpnLearnerConfig)
    _spn: SumProductNetwork | None = field(default=None, repr=False)
    _construction_seconds: float = 0.0

    # ------------------------------------------------------------------ #

    @classmethod
    def fit(
        cls,
        table: Table,
        sample_size: int | None = 100_000,
        config: SpnLearnerConfig | None = None,
    ) -> "DeepDBLike":
        """Learn the SPN from a uniform sample of the table.

        When no explicit learner configuration is given, the RSPN default of
        splitting row clusters down to 1 % of the sample is used, which is
        what drives DeepDB's comparatively large models.
        """
        if config is None:
            effective_rows = sample_size if sample_size is not None else table.num_rows
            config = SpnLearnerConfig(
                min_instances=max(64, int(effective_rows) // 100),
                max_leaf_bins=256,
            )
        system = cls(sample_size=sample_size, config=config)
        start = time.perf_counter()
        sampled = table.sample(sample_size, rng=np.random.default_rng(system.config.seed)) \
            if sample_size is not None else table
        columns = {name: sampled.column(name) for name in sampled.column_names}
        categorical = set(sampled.schema.categorical_names)
        system._spn = SumProductNetwork.learn(
            columns, categorical, population_rows=table.num_rows, config=system.config
        )
        system._construction_seconds = time.perf_counter() - start
        return system

    @property
    def construction_seconds(self) -> float:
        return self._construction_seconds

    def synopsis_bytes(self) -> int:
        if self._spn is None:
            return 0
        return self._spn.storage_bytes()

    # ------------------------------------------------------------------ #

    def estimate(self, query: Query) -> BaselineResult:
        """Answer a COUNT / SUM / AVG query with AND-connected predicates."""
        if self._spn is None:
            raise RuntimeError("call DeepDBLike.fit before estimating queries")
        aggregation = query.aggregation
        if aggregation.func not in _SUPPORTED:
            raise UnsupportedQueryError(f"DeepDB baseline does not support {aggregation.func.value}")
        if query.group_by is not None:
            raise UnsupportedQueryError("DeepDB baseline does not support GROUP BY here")
        conditions = self._and_conditions(query)
        kinds_prob: dict[str, str] = {}
        probability = self._spn.expectation(kinds_prob, conditions)
        probability = float(np.clip(probability, 0.0, 1.0))
        scale = self._spn.population_rows
        sample = self._spn.sample_rows
        count = probability * scale
        count_se = _Z99 * np.sqrt(max(probability * (1 - probability), 0.0) / max(sample, 1)) * scale

        if aggregation.func is AggregateFunction.COUNT:
            return BaselineResult(value=count, lower=max(0.0, count - count_se), upper=count + count_se)

        column = aggregation.column
        mean_mass = self._spn.expectation({column: "mean"}, conditions)
        mean_sq_mass = self._spn.expectation({column: "mean_sq"}, conditions)
        if probability <= 0:
            return BaselineResult(value=float("nan"))
        average = mean_mass / probability
        variance = max(mean_sq_mass / probability - average ** 2, 0.0)
        effective = max(probability * sample, 1.0)
        avg_se = _Z99 * np.sqrt(variance / effective)
        if aggregation.func is AggregateFunction.AVG:
            return BaselineResult(value=average, lower=average - avg_se, upper=average + avg_se)
        total = mean_mass * scale
        total_se = np.sqrt((count_se * abs(average)) ** 2 + (avg_se * count) ** 2)
        return BaselineResult(value=total, lower=total - total_se, upper=total + total_se)

    # ------------------------------------------------------------------ #

    def _and_conditions(self, query: Query) -> dict[str, list[Condition]]:
        """Flatten the predicate, rejecting OR (unsupported by this baseline)."""
        conditions: dict[str, list[Condition]] = {}
        if query.predicate is None:
            return conditions

        def visit(node) -> None:
            if isinstance(node, Condition):
                conditions.setdefault(node.column, []).append(node)
                return
            if isinstance(node, PredicateNode):
                if node.op is LogicalOp.OR:
                    raise UnsupportedQueryError("DeepDB baseline does not support OR predicates")
                for child in node.children:
                    visit(child)
                return
            raise UnsupportedQueryError(f"unsupported predicate node {type(node)!r}")

        visit(query.predicate)
        return conditions
