"""Baseline AQP systems used in the paper's evaluation, plus the common interface."""

from .base import AqpSystem, BaselineResult, UnsupportedQueryError
from .adapter import PairwiseHistSystem
from .deepdb import DeepDBLike
from .dbest import DBEstPlusPlusLike
from .sampling_aqp import SamplingAQP
from .spn import HistogramLeaf, SpnLearnerConfig, SumProductNetwork
from .density import BinnedRegression, GaussianMixture1D

__all__ = [
    "AqpSystem",
    "BaselineResult",
    "UnsupportedQueryError",
    "PairwiseHistSystem",
    "DeepDBLike",
    "DBEstPlusPlusLike",
    "SamplingAQP",
    "HistogramLeaf",
    "SpnLearnerConfig",
    "SumProductNetwork",
    "BinnedRegression",
    "GaussianMixture1D",
]
