"""Small density-estimation building blocks for the learned baselines.

DBEst++ models column densities with mixture density networks; offline and
without a deep-learning stack we substitute a classic one-dimensional
Gaussian mixture fitted with EM (:class:`GaussianMixture1D`), which plays
the same role in the query estimator: ``P(a <= X <= b)`` and conditional
expectations are read from the fitted mixture rather than from data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats


@dataclass
class GaussianMixture1D:
    """A one-dimensional Gaussian mixture model fitted with EM."""

    num_components: int = 4
    max_iterations: int = 50
    tolerance: float = 1e-5
    seed: int = 0
    weights: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    means: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    stds: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]

    # ------------------------------------------------------------------ #

    def fit(self, values: np.ndarray) -> "GaussianMixture1D":
        """Fit the mixture to 1-d data with (plain) EM."""
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            values = np.array([0.0])
        k = max(1, min(self.num_components, len(np.unique(values))))
        rng = np.random.default_rng(self.seed)
        quantiles = np.linspace(0.05, 0.95, k)
        self.means = np.quantile(values, quantiles)
        spread = values.std() if values.std() > 0 else 1.0
        self.stds = np.full(k, spread / k + 1e-6)
        self.weights = np.full(k, 1.0 / k)
        log_likelihood = -np.inf
        for _ in range(self.max_iterations):
            responsibilities = self._responsibilities(values)
            totals = responsibilities.sum(axis=0) + 1e-12
            self.weights = totals / len(values)
            self.means = (responsibilities * values[:, None]).sum(axis=0) / totals
            variance = (responsibilities * (values[:, None] - self.means) ** 2).sum(axis=0) / totals
            self.stds = np.sqrt(np.maximum(variance, 1e-12))
            new_log_likelihood = self._log_likelihood(values)
            if abs(new_log_likelihood - log_likelihood) < self.tolerance:
                break
            log_likelihood = new_log_likelihood
        _ = rng  # deterministic initialisation; rng kept for future extensions
        return self

    def _responsibilities(self, values: np.ndarray) -> np.ndarray:
        densities = np.stack(
            [w * stats.norm.pdf(values, m, s) for w, m, s in zip(self.weights, self.means, self.stds)],
            axis=1,
        )
        totals = densities.sum(axis=1, keepdims=True)
        totals[totals <= 0] = 1e-300
        return densities / totals

    def _log_likelihood(self, values: np.ndarray) -> float:
        densities = np.stack(
            [w * stats.norm.pdf(values, m, s) for w, m, s in zip(self.weights, self.means, self.stds)],
            axis=1,
        ).sum(axis=1)
        return float(np.log(np.maximum(densities, 1e-300)).sum())

    # ------------------------------------------------------------------ #

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=float)
        values = sum(
            w * stats.norm.pdf(x, m, s) for w, m, s in zip(self.weights, self.means, self.stds)
        )
        return values

    def cdf(self, x: float) -> float:
        return float(
            sum(w * stats.norm.cdf(x, m, s) for w, m, s in zip(self.weights, self.means, self.stds))
        )

    def probability(self, lower: float, upper: float) -> float:
        """``P(lower <= X <= upper)`` under the fitted mixture."""
        if upper < lower:
            return 0.0
        return max(0.0, self.cdf(upper) - self.cdf(lower))

    def storage_bytes(self) -> int:
        """Parameters only: weights, means, stds as float64."""
        return 3 * len(self.weights) * 8


@dataclass
class BinnedRegression:
    """Piecewise-constant regression of ``y`` on ``x`` (the DBEst-style regressor).

    Stores E[y | x in bin] and E[y^2 | x in bin] over an equi-width grid of
    ``x`` so SUM / AVG queries with a range predicate on ``x`` can be
    answered without data access.
    """

    num_bins: int = 64
    edges: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    mean_y: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]
    mean_y_squared: np.ndarray = field(default=None, init=False)  # type: ignore[assignment]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BinnedRegression":
        mask = np.isfinite(x) & np.isfinite(y)
        x, y = x[mask], y[mask]
        if x.size == 0:
            self.edges = np.array([0.0, 1.0])
            self.mean_y = np.array([0.0])
            self.mean_y_squared = np.array([0.0])
            return self
        lo, hi = float(x.min()), float(x.max())
        if hi <= lo:
            hi = lo + 1.0
        self.edges = np.linspace(lo, hi, self.num_bins + 1)
        idx = np.clip(np.searchsorted(self.edges, x, side="right") - 1, 0, self.num_bins - 1)
        counts = np.bincount(idx, minlength=self.num_bins).astype(float)
        sums = np.bincount(idx, weights=y, minlength=self.num_bins)
        sums_sq = np.bincount(idx, weights=y ** 2, minlength=self.num_bins)
        overall_mean = float(y.mean())
        overall_mean_sq = float((y ** 2).mean())
        with np.errstate(divide="ignore", invalid="ignore"):
            self.mean_y = np.where(counts > 0, sums / counts, overall_mean)
            self.mean_y_squared = np.where(counts > 0, sums_sq / counts, overall_mean_sq)
        return self

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=float)
        idx = np.clip(np.searchsorted(self.edges, x, side="right") - 1, 0, len(self.mean_y) - 1)
        return self.mean_y[idx]

    def bin_centres(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def storage_bytes(self) -> int:
        return (len(self.edges) + 2 * len(self.mean_y)) * 8
