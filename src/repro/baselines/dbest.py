"""DBEst++-style AQP baseline: per-template density + regression models.

DBEst++ [21] trains, for every query template (aggregation column,
predicate column), a mixture density network for the predicate column and a
regression model for the aggregation column.  This baseline substitutes a
Gaussian mixture (EM) for the density network and a binned regressor for
the regression network, keeping the architecture — and its consequences —
intact:

* every template needs its own model, so supporting a workload-wide set of
  templates multiplies storage and construction time,
* only COUNT / SUM / AVG with a single-column range predicate over numeric
  data are supported (matching the limitations the paper observed),
* no query bounds are produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.table import Table
from ..sql.ast import AggregateFunction, ComparisonOp, Condition, Query
from .base import BaselineResult, UnsupportedQueryError
from .density import BinnedRegression, GaussianMixture1D

_SUPPORTED = {AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG}


@dataclass
class _TemplateModel:
    """Density + regression models for one (aggregation, predicate) template."""

    aggregation_column: str
    predicate_column: str
    density: GaussianMixture1D
    regression: BinnedRegression
    valid_rows: int
    population_rows: int

    def storage_bytes(self) -> int:
        return self.density.storage_bytes() + self.regression.storage_bytes() + 64


@dataclass
class DBEstPlusPlusLike:
    """Per-template density/regression AQP engine with a DBEst++-like interface."""

    name: str = "DBEst++"
    sample_size: int | None = 10_000
    mixture_components: int = 6
    regression_bins: int = 64
    seed: int = 0
    _models: dict[tuple[str, str], _TemplateModel] = field(default_factory=dict, repr=False)
    _construction_seconds: float = 0.0

    # ------------------------------------------------------------------ #

    @classmethod
    def fit(
        cls,
        table: Table,
        sample_size: int | None = 10_000,
        templates: list[tuple[str, str]] | None = None,
        mixture_components: int = 6,
        regression_bins: int = 64,
        seed: int = 0,
    ) -> "DBEstPlusPlusLike":
        """Train one model per template.

        ``templates`` defaults to every ordered pair of numeric columns —
        the configuration the paper uses when comparing synopsis sizes
        ("all DBEst++ models required to support the same queries").
        """
        system = cls(
            sample_size=sample_size,
            mixture_components=mixture_components,
            regression_bins=regression_bins,
            seed=seed,
        )
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        sampled = table.sample(sample_size, rng=rng) if sample_size is not None else table
        numeric = [c.name for c in table.schema if c.is_numeric]
        if templates is None:
            templates = [(a, p) for a in numeric for p in numeric if a != p]
        for agg_column, pred_column in templates:
            if agg_column not in numeric or pred_column not in numeric:
                continue
            system._models[(agg_column, pred_column)] = system._fit_template(
                table, sampled, agg_column, pred_column
            )
        system._construction_seconds = time.perf_counter() - start
        return system

    def _fit_template(
        self, table: Table, sampled: Table, agg_column: str, pred_column: str
    ) -> _TemplateModel:
        x = np.asarray(sampled.column(pred_column), dtype=float)
        y = np.asarray(sampled.column(agg_column), dtype=float)
        mask = np.isfinite(x) & np.isfinite(y)
        density = GaussianMixture1D(num_components=self.mixture_components, seed=self.seed).fit(x[mask])
        regression = BinnedRegression(num_bins=self.regression_bins).fit(x[mask], y[mask])
        full_x = np.asarray(table.column(pred_column), dtype=float)
        full_y = np.asarray(table.column(agg_column), dtype=float)
        valid_rows = int((np.isfinite(full_x) & np.isfinite(full_y)).sum())
        return _TemplateModel(
            aggregation_column=agg_column,
            predicate_column=pred_column,
            density=density,
            regression=regression,
            valid_rows=valid_rows,
            population_rows=table.num_rows,
        )

    # ------------------------------------------------------------------ #

    @property
    def construction_seconds(self) -> float:
        return self._construction_seconds

    def synopsis_bytes(self) -> int:
        return sum(model.storage_bytes() for model in self._models.values())

    @property
    def num_templates(self) -> int:
        return len(self._models)

    # ------------------------------------------------------------------ #

    def estimate(self, query: Query) -> BaselineResult:
        """Answer a single-predicate COUNT / SUM / AVG query from the template models."""
        aggregation = query.aggregation
        if aggregation.func not in _SUPPORTED:
            raise UnsupportedQueryError(f"DBEst++ baseline does not support {aggregation.func.value}")
        if query.group_by is not None:
            raise UnsupportedQueryError("DBEst++ baseline does not support GROUP BY here")
        lower, upper, pred_column = self._predicate_range(query)
        model = self._models.get((aggregation.column, pred_column))
        if model is None:
            raise UnsupportedQueryError(
                f"no DBEst++ model for template ({aggregation.column}, {pred_column})"
            )
        probability = model.density.probability(lower, upper)
        count = probability * model.valid_rows
        if aggregation.func is AggregateFunction.COUNT:
            return BaselineResult(value=count)
        centres = model.regression.bin_centres()
        in_range = (centres >= lower) & (centres <= upper)
        if not in_range.any():
            in_range = np.ones_like(centres, dtype=bool)
        densities = np.asarray(model.density.pdf(centres[in_range]), dtype=float)
        weights = densities / densities.sum() if densities.sum() > 0 else np.full(in_range.sum(), 1.0 / in_range.sum())
        average = float((weights * model.regression.mean_y[in_range]).sum())
        if aggregation.func is AggregateFunction.AVG:
            return BaselineResult(value=average)
        return BaselineResult(value=average * count)

    # ------------------------------------------------------------------ #

    def _predicate_range(self, query: Query) -> tuple[float, float, str]:
        """Convert the predicate to a single [lower, upper] range on one column."""
        if query.predicate is None:
            raise UnsupportedQueryError("DBEst++ baseline requires a predicate")
        conditions = self._flatten_and(query)
        columns = {c.column for c in conditions}
        if len(columns) != 1:
            raise UnsupportedQueryError("DBEst++ baseline supports predicates on a single column only")
        column = next(iter(columns))
        lower, upper = -np.inf, np.inf
        for condition in conditions:
            if isinstance(condition.literal, str):
                raise UnsupportedQueryError("DBEst++ baseline supports numeric predicates only")
            literal = float(condition.literal)
            if condition.op in (ComparisonOp.GT, ComparisonOp.GE):
                lower = max(lower, literal)
            elif condition.op in (ComparisonOp.LT, ComparisonOp.LE):
                upper = min(upper, literal)
            elif condition.op is ComparisonOp.EQ:
                lower = max(lower, literal)
                upper = min(upper, literal)
            else:
                raise UnsupportedQueryError("DBEst++ baseline does not support != predicates")
        return lower, upper, column

    def _flatten_and(self, query: Query) -> list[Condition]:
        from ..sql.ast import LogicalOp, PredicateNode

        conditions: list[Condition] = []

        def visit(node) -> None:
            if isinstance(node, Condition):
                conditions.append(node)
                return
            if isinstance(node, PredicateNode):
                if node.op is LogicalOp.OR:
                    raise UnsupportedQueryError("DBEst++ baseline does not support OR predicates")
                for child in node.children:
                    visit(child)
                return
            raise UnsupportedQueryError(f"unsupported predicate node {type(node)!r}")

        visit(query.predicate)
        return conditions
