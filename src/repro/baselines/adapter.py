"""Adapter exposing :class:`~repro.core.engine.PairwiseHistEngine` through the
common :class:`~repro.baselines.base.AqpSystem` interface used by the
benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import PairwiseHistEngine
from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..sql.ast import Query
from .base import BaselineResult, UnsupportedQueryError


@dataclass
class PairwiseHistSystem:
    """PairwiseHist wrapped as an evaluated AQP system."""

    engine: PairwiseHistEngine
    name: str = "PairwiseHist"

    @classmethod
    def fit(
        cls,
        table: Table,
        sample_size: int | None = 100_000,
        alpha: float = 0.001,
        use_compression: bool = True,
        name: str = "PairwiseHist",
        params: PairwiseHistParams | None = None,
    ) -> "PairwiseHistSystem":
        params = params or PairwiseHistParams.with_defaults(sample_size=sample_size, alpha=alpha)
        engine = PairwiseHistEngine.from_table(table, params=params, use_compression=use_compression)
        return cls(engine=engine, name=name)

    @property
    def construction_seconds(self) -> float:
        return self.engine.construction_seconds

    def synopsis_bytes(self) -> int:
        return self.engine.synopsis_bytes()

    def estimate(self, query: Query) -> BaselineResult:
        if query.group_by is not None:
            raise UnsupportedQueryError("the harness compares non-GROUP BY queries")
        result = self.engine.execute_scalar(query)
        return BaselineResult(value=result.value, lower=result.lower, upper=result.upper)
