"""Uniform-sampling AQP baseline (the VerdictDB / BlinkDB family of Table 1).

Keeps a uniform row sample, answers queries by exact execution over the
sample, rescales COUNT / SUM by the sampling ratio and attaches CLT
confidence bounds.  It supports every aggregation function and predicate
shape, at the cost of a synopsis that is simply the sample itself
(gigabytes at production scale, which is the trade-off Table 1 records).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..data.table import Table
from ..exactdb.executor import ExactQueryEngine
from ..sql.ast import AggregateFunction, Query
from ..sql.predicate import predicate_mask
from .base import BaselineResult, UnsupportedQueryError

_Z99 = float(stats.norm.ppf(0.995))


@dataclass
class SamplingAQP:
    """Uniform-sample AQP engine with CLT error bounds."""

    name: str = "Sampling"
    sample_size: int | None = 100_000
    seed: int = 0
    _sample: Table | None = field(default=None, repr=False)
    _population_rows: int = 0
    _construction_seconds: float = 0.0

    @classmethod
    def fit(cls, table: Table, sample_size: int | None = 100_000, seed: int = 0) -> "SamplingAQP":
        system = cls(sample_size=sample_size, seed=seed)
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        system._sample = table.sample(sample_size, rng=rng) if sample_size is not None else table
        system._population_rows = table.num_rows
        system._construction_seconds = time.perf_counter() - start
        return system

    # ------------------------------------------------------------------ #

    @property
    def construction_seconds(self) -> float:
        return self._construction_seconds

    def synopsis_bytes(self) -> int:
        return self._sample.memory_bytes() if self._sample is not None else 0

    @property
    def scale(self) -> float:
        if self._sample is None or self._sample.num_rows == 0:
            return 1.0
        return self._population_rows / self._sample.num_rows

    # ------------------------------------------------------------------ #

    def estimate(self, query: Query) -> BaselineResult:
        if self._sample is None:
            raise RuntimeError("call SamplingAQP.fit before estimating queries")
        if query.group_by is not None:
            raise UnsupportedQueryError("use the exact engine for GROUP BY in this baseline")
        aggregation = query.aggregation
        engine = ExactQueryEngine(self._sample)
        sample_value = engine.execute_scalar(query)
        func = aggregation.func
        if func is AggregateFunction.COUNT:
            value = sample_value * self.scale
            probability = sample_value / max(self._sample.num_rows, 1)
            se = _Z99 * np.sqrt(probability * (1 - probability) / max(self._sample.num_rows, 1))
            spread = se * self._population_rows
            return BaselineResult(value=value, lower=max(0.0, value - spread), upper=value + spread)
        if func is AggregateFunction.SUM:
            value = sample_value * self.scale
            spread = self._clt_spread(query) * self._population_rows
            return BaselineResult(value=value, lower=value - spread, upper=value + spread)
        if func is AggregateFunction.AVG:
            spread = self._clt_spread(query, normalise=True)
            return BaselineResult(value=sample_value, lower=sample_value - spread, upper=sample_value + spread)
        # MIN / MAX / MEDIAN / VAR: best estimate is the sample statistic;
        # deterministic bounds are not available from a uniform sample.
        return BaselineResult(value=sample_value)

    def _clt_spread(self, query: Query, normalise: bool = False) -> float:
        """CLT half-width of the per-row contribution mean."""
        column = query.aggregation.column
        values = np.asarray(self._sample.column(column), dtype=float)
        mask = predicate_mask(query.predicate, self._sample.columns) & np.isfinite(values)
        contributions = np.where(mask, values, 0.0)
        n = max(self._sample.num_rows, 1)
        se = _Z99 * contributions.std() / np.sqrt(n)
        if not normalise:
            return float(se)
        matched = max(int(mask.sum()), 1)
        return float(_Z99 * values[mask].std() / np.sqrt(matched)) if matched > 1 else float("inf")
