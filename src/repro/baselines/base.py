"""Common interface shared by PairwiseHist and the baseline AQP systems.

The benchmark harness treats every system uniformly: it is built from a
table (optionally from a sample), answers queries with an estimate and
optional bounds, reports its synopsis size and its construction time, and
may refuse queries it does not support (the paper carefully tracks which
queries DeepDB and DBEst++ can answer, §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..sql.ast import Query, UnsupportedQueryError

__all__ = ["AqpSystem", "BaselineResult", "UnsupportedQueryError"]


@dataclass
class BaselineResult:
    """Estimate (and optional bounds) returned by a baseline system."""

    value: float
    lower: float = float("nan")
    upper: float = float("nan")

    @property
    def has_bounds(self) -> bool:
        import numpy as np

        return bool(np.isfinite(self.lower) and np.isfinite(self.upper))


@runtime_checkable
class AqpSystem(Protocol):
    """Structural interface every evaluated system satisfies."""

    #: Human-readable system name used in benchmark output.
    name: str

    def estimate(self, query: Query) -> BaselineResult:
        """Answer a (non-GROUP BY) query approximately."""
        ...

    def synopsis_bytes(self) -> int:
        """Size of the system's synopsis / models in bytes."""
        ...

    @property
    def construction_seconds(self) -> float:
        """Wall-clock time spent building the synopsis."""
        ...
