"""A Sum-Product Network over a table sample (the DeepDB model family).

DeepDB learns Relational Sum-Product Networks: sum nodes partition rows
into clusters, product nodes split (approximately) independent column
groups, and leaves hold per-column univariate distributions.  The learner
here follows the same recipe with classical components — k-means-style row
clustering, correlation-threshold column splits and histogram leaves — so
the baseline exhibits DeepDB's characteristic behaviour (good COUNT / AVG
accuracy, larger synopses, slower multi-predicate queries) without the
original code base.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sql.ast import ComparisonOp, Condition

#: Expectation kinds a leaf can be asked for.
_PROB = "prob"
_MEAN = "mean"
_MEAN_SQ = "mean_sq"


# --------------------------------------------------------------------------- #
# Leaves


@dataclass
class HistogramLeaf:
    """Univariate leaf distribution: an equi-depth histogram of one column."""

    column: str
    edges: np.ndarray
    probabilities: np.ndarray
    null_fraction: float
    is_categorical: bool = False
    categories: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @classmethod
    def fit_numeric(cls, column: str, values: np.ndarray, max_bins: int = 64) -> "HistogramLeaf":
        finite = values[np.isfinite(values)]
        null_fraction = 1.0 - (len(finite) / len(values)) if len(values) else 0.0
        if finite.size == 0:
            return cls(column, np.array([0.0, 1.0]), np.array([1.0]), null_fraction)
        quantiles = np.linspace(0, 1, min(max_bins, max(2, len(np.unique(finite)))) + 1)
        edges = np.unique(np.quantile(finite, quantiles))
        if len(edges) < 2:
            edges = np.array([edges[0], edges[0] + 1.0])
        counts, _ = np.histogram(finite, bins=edges)
        probabilities = counts / counts.sum() if counts.sum() else np.full(len(counts), 1.0 / len(counts))
        return cls(column, edges, probabilities, null_fraction)

    @classmethod
    def fit_categorical(cls, column: str, values: np.ndarray) -> "HistogramLeaf":
        non_null = [v for v in values if v is not None]
        null_fraction = 1.0 - (len(non_null) / len(values)) if len(values) else 0.0
        if not non_null:
            return cls(column, np.array([0.0, 1.0]), np.array([1.0]), null_fraction, True, {})
        labels, counts = np.unique(np.asarray(non_null, dtype=object), return_counts=True)
        categories = {str(l): float(c / counts.sum()) for l, c in zip(labels, counts)}
        return cls(column, np.array([0.0, 1.0]), np.array([1.0]), null_fraction, True, categories)

    # ------------------------------------------------------------------ #

    @property
    def midpoints(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def _condition_fraction(self, condition: Condition | None) -> np.ndarray:
        """Fraction of each histogram bin satisfying the condition."""
        if condition is None:
            return np.ones(len(self.probabilities))
        literal = float(condition.literal)
        lower, upper = self.edges[:-1], self.edges[1:]
        widths = np.maximum(upper - lower, 1e-12)
        if condition.op in (ComparisonOp.LT, ComparisonOp.LE):
            fraction = np.clip((literal - lower) / widths, 0.0, 1.0)
        elif condition.op in (ComparisonOp.GT, ComparisonOp.GE):
            fraction = np.clip((upper - literal) / widths, 0.0, 1.0)
        elif condition.op is ComparisonOp.EQ:
            fraction = np.where((literal >= lower) & (literal <= upper), 1.0 / np.maximum(widths, 1.0), 0.0)
            fraction = np.clip(fraction, 0.0, 1.0)
        else:  # NE
            eq = np.where((literal >= lower) & (literal <= upper), 1.0 / np.maximum(widths, 1.0), 0.0)
            fraction = 1.0 - np.clip(eq, 0.0, 1.0)
        return fraction

    def expectation(self, kind: str, condition: Condition | None) -> float:
        """E[f(X) * 1(condition)] where f is 1, x or x^2 depending on ``kind``."""
        # A column with no condition does not restrict the predicate at all:
        # rows with nulls in unrelated columns still satisfy the query.
        if condition is None and kind == _PROB:
            return 1.0
        if self.is_categorical:
            if condition is None:
                probability = 1.0 - self.null_fraction
            else:
                hit = self.categories.get(str(condition.literal), 0.0)
                if condition.op is ComparisonOp.EQ:
                    probability = hit * (1.0 - self.null_fraction)
                elif condition.op is ComparisonOp.NE:
                    probability = (1.0 - hit) * (1.0 - self.null_fraction)
                else:
                    probability = 0.0
            if kind == _PROB:
                return probability
            return 0.0
        fraction = self._condition_fraction(condition)
        mass = self.probabilities * fraction * (1.0 - self.null_fraction)
        if kind == _PROB:
            return float(mass.sum())
        midpoints = self.midpoints
        if kind == _MEAN:
            return float((mass * midpoints).sum())
        return float((mass * midpoints ** 2).sum())

    def storage_bytes(self) -> int:
        if self.is_categorical:
            return sum(len(k) + 8 for k in self.categories) + 16
        return (len(self.edges) + len(self.probabilities)) * 8 + 16


# --------------------------------------------------------------------------- #
# Interior nodes


@dataclass
class ProductNode:
    """Independence split: children cover disjoint column sets."""

    children: list = field(default_factory=list)

    def expectation(self, kinds: dict[str, str], conditions: dict[str, list[Condition]]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.expectation(kinds, conditions)
        return result

    def storage_bytes(self) -> int:
        return 8 + sum(child.storage_bytes() for child in self.children)


@dataclass
class SumNode:
    """Row-cluster split: a mixture over children with the same columns."""

    weights: list[float] = field(default_factory=list)
    children: list = field(default_factory=list)

    def expectation(self, kinds: dict[str, str], conditions: dict[str, list[Condition]]) -> float:
        return float(
            sum(w * child.expectation(kinds, conditions) for w, child in zip(self.weights, self.children))
        )

    def storage_bytes(self) -> int:
        return 8 * len(self.weights) + sum(child.storage_bytes() for child in self.children)


@dataclass
class LeafWrapper:
    """Adapts a :class:`HistogramLeaf` to the interior-node expectation API."""

    leaf: HistogramLeaf

    def expectation(self, kinds: dict[str, str], conditions: dict[str, list[Condition]]) -> float:
        column = self.leaf.column
        kind = kinds.get(column, _PROB)
        column_conditions = conditions.get(column, [None])
        if len(column_conditions) == 1:
            return self.leaf.expectation(kind, column_conditions[0])
        # Multiple AND-ed conditions on the same column: intersect by taking
        # the minimum satisfied mass (exact for nested ranges).
        return min(self.leaf.expectation(kind, c) for c in column_conditions)

    def storage_bytes(self) -> int:
        return self.leaf.storage_bytes()


# --------------------------------------------------------------------------- #
# Structure learning


@dataclass
class SpnLearnerConfig:
    """Hyper-parameters of the SPN structure learner."""

    min_instances: int = 500
    correlation_threshold: float = 0.3
    max_depth: int = 12
    max_leaf_bins: int = 64
    seed: int = 0


def _column_groups(matrix: np.ndarray, threshold: float) -> list[list[int]]:
    """Connected components of the |correlation| > threshold graph."""
    num_cols = matrix.shape[1]
    if num_cols == 1:
        return [[0]]
    filled = np.where(np.isfinite(matrix), matrix, np.nanmean(np.where(np.isfinite(matrix), matrix, np.nan), axis=0))
    filled = np.nan_to_num(filled, nan=0.0)
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(filled, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)
    adjacency = np.abs(corr) > threshold
    visited = np.zeros(num_cols, dtype=bool)
    groups: list[list[int]] = []
    for start in range(num_cols):
        if visited[start]:
            continue
        stack = [start]
        component = []
        while stack:
            node = stack.pop()
            if visited[node]:
                continue
            visited[node] = True
            component.append(node)
            stack.extend(np.flatnonzero(adjacency[node] & ~visited).tolist())
        groups.append(sorted(component))
    return groups


def _cluster_rows(matrix: np.ndarray, seed: int, clusters: int = 2, iterations: int = 8) -> np.ndarray:
    """Tiny k-means over standardised numeric columns (row split for sum nodes)."""
    filled = np.nan_to_num(matrix, nan=0.0)
    std = filled.std(axis=0)
    std[std == 0] = 1.0
    normalised = (filled - filled.mean(axis=0)) / std
    rng = np.random.default_rng(seed)
    centres = normalised[rng.choice(len(normalised), size=clusters, replace=False)]
    labels = np.zeros(len(normalised), dtype=int)
    for _ in range(iterations):
        distances = ((normalised[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        for c in range(clusters):
            members = normalised[labels == c]
            if len(members):
                centres[c] = members.mean(axis=0)
    return labels


@dataclass
class SumProductNetwork:
    """A learned SPN with the sample-size book-keeping needed for COUNT/SUM."""

    root: ProductNode | SumNode | LeafWrapper
    columns: list[str]
    sample_rows: int
    population_rows: int

    @property
    def scale_factor(self) -> float:
        return self.population_rows / max(self.sample_rows, 1)

    def expectation(self, kinds: dict[str, str], conditions: dict[str, list[Condition]]) -> float:
        return self.root.expectation(kinds, conditions)

    def storage_bytes(self) -> int:
        return self.root.storage_bytes() + 64

    # ------------------------------------------------------------------ #

    @classmethod
    def learn(
        cls,
        columns: dict[str, np.ndarray],
        categorical: set[str],
        population_rows: int,
        config: SpnLearnerConfig | None = None,
    ) -> "SumProductNetwork":
        """Learn an SPN over a (sampled) column dictionary."""
        config = config or SpnLearnerConfig()
        names = list(columns)
        sample_rows = len(columns[names[0]]) if names else 0
        numeric_matrix = {}
        for name in names:
            if name in categorical:
                codes = np.array(
                    [hash(v) % 997 if v is not None else np.nan for v in columns[name]], dtype=float
                )
                numeric_matrix[name] = codes
            else:
                numeric_matrix[name] = np.asarray(columns[name], dtype=float)

        def build(row_index: np.ndarray, column_names: list[str], depth: int):
            if len(column_names) == 1:
                name = column_names[0]
                values = columns[name][row_index]
                if name in categorical:
                    return LeafWrapper(HistogramLeaf.fit_categorical(name, values))
                return LeafWrapper(
                    HistogramLeaf.fit_numeric(name, np.asarray(values, dtype=float), config.max_leaf_bins)
                )
            if len(row_index) < config.min_instances or depth >= config.max_depth:
                return ProductNode([build(row_index, [n], depth + 1) for n in column_names])
            matrix = np.column_stack([numeric_matrix[n][row_index] for n in column_names])
            groups = _column_groups(matrix, config.correlation_threshold)
            if len(groups) > 1:
                return ProductNode(
                    [build(row_index, [column_names[i] for i in group], depth + 1) for group in groups]
                )
            labels = _cluster_rows(matrix, config.seed + depth)
            children = []
            weights = []
            for label in np.unique(labels):
                members = row_index[labels == label]
                if len(members) == 0:
                    continue
                weights.append(len(members) / len(row_index))
                children.append(build(members, column_names, depth + 1))
            if len(children) <= 1:
                return ProductNode([build(row_index, [n], depth + 1) for n in column_names])
            return SumNode(weights=weights, children=children)

        root = build(np.arange(sample_rows), names, 0)
        return cls(root=root, columns=names, sample_rows=sample_rows, population_rows=population_rows)
