"""Asyncio front end and line-protocol server for the query service.

:class:`AsyncQueryService` exposes ``query`` / ``ingest`` /
``register_table`` as coroutines over a thread-safe
:class:`~repro.service.concurrency.ConcurrentQueryService`.  CPU work is
dispatched to a bounded thread-pool executor, so the event loop stays
responsive while hundreds of dashboard clients multiplex onto a handful
of worker threads.  Small appends are coalesced: each table gets an
ingest queue whose drain task batches everything pending into a single
tail-partition recompression, amortising the synopsis rebuild across
writers (the paper's bounded-cost update, amortised once more).

:class:`QueryServer` puts a TCP protocol in front of it
(``asyncio.start_server``) speaking **two negotiated dialects** on one
port (sniffed from the first bytes of each connection, see
:mod:`repro.service.framing`):

* the length-prefixed **binary pipelined protocol** — many in-flight
  requests per connection, responses matched by request id, binary row
  and result payloads (no JSON on the hot path);
* the legacy **newline-delimited-JSON** protocol, kept as a fallback so
  existing clients and scripts work unchanged:

    → {"op": "query",  "sql": "SELECT AVG(x) FROM t WHERE y > 3"}
    ← {"ok": true, "result": {"results": [{"value": ..., ...}]}}

Supported ops: ``query``, ``ingest``, ``register``, ``drop``, ``tables``,
``ping``, ``checkpoint``, ``persist``.
Errors come back as ``{"ok": false, "error": ..., "error_type": ...}``
(JSON) or a ``STATUS_ERROR`` frame (binary) — never as a dropped
connection or a stack trace.

The server also applies **admission control**: in-flight queries and
ingests are counted against bounded limits, and work beyond them is shed
immediately with an explicit ``Overloaded`` error frame
(``STATUS_OVERLOADED`` in binary) instead of queueing without bound —
the service degrades gracefully at overload rather than collapsing.

Run it as a process with ``python -m repro.service --data-dir
/var/lib/aqp``: the data directory makes the whole catalog durable (WAL +
background snapshot checkpoints via :mod:`repro.storage`), so a killed
server restarted on the same directory recovers every table.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import math
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path

from ..audit.explain import split_explain
from ..core.engine import AqpResult
from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..sql.ast import Query
from ..sql.parser import ParseError
from ..storage.checkpointer import BackgroundCheckpointer
from ..storage.faults import maybe_crash
from . import framing, wire
from .concurrency import ConcurrentQueryService
from .database import (
    DEFAULT_RESULT_CACHE_SIZE,
    Database,
    IngestResult,
    ManagedTable,
)

#: Coalesce at most this many rows into one batched tail recompression.
DEFAULT_MAX_BATCH_ROWS = 65_536

#: How long the ingest coalescer keeps a batch open after the first append
#: arrives (seconds).  0 keeps the legacy behaviour: batch only what is
#: already queued.
DEFAULT_MAX_BATCH_DELAY = 0.0

#: Per-line buffer limit for the TCP protocol (asyncio's default is 64 KiB,
#: far smaller than a realistic ingest frame).
DEFAULT_LINE_LIMIT = 32 * 1024 * 1024

#: Admission-control defaults: in-flight requests past these limits are
#: shed with an explicit ``Overloaded`` response instead of queueing.
#: ``None`` disables a limit.  One batch frame counts as one query slot.
DEFAULT_MAX_INFLIGHT_QUERIES = 256
DEFAULT_MAX_INFLIGHT_INGESTS = 64

_REQUEST_LATENCY = obs_metrics.histogram(
    "aqp_request_latency_seconds",
    "Wall time serving one admitted request, by admission class.",
    labelnames=("kind",),
)
_REQUESTS_SHED = obs_metrics.counter(
    "aqp_requests_shed_total",
    "Requests refused at admission control, by admission class.",
    labelnames=("kind",),
)

# Pre-bound label cells: the per-request path must not pay kwargs/label
# resolution (see Counter.labels / Histogram.labels).
_LATENCY_CELLS = {
    kind: _REQUEST_LATENCY.labels(kind=kind) for kind in ("query", "ingest")
}
_SHED_CELLS = {
    kind: _REQUESTS_SHED.labels(kind=kind) for kind in ("query", "ingest")
}


def _observe_latency(kind: str, seconds: float) -> None:
    cell = _LATENCY_CELLS.get(kind)
    if cell is None:
        cell = _LATENCY_CELLS[kind] = _REQUEST_LATENCY.labels(kind=kind)
    cell.observe(seconds)


class AsyncQueryService:
    """Coroutine face of a :class:`ConcurrentQueryService`.

    ``query`` / ``query_scalar`` / ``register_table`` dispatch straight to
    the bounded executor; ``ingest`` goes through a per-table coalescing
    queue unless ``coalesce=False``.  Use as an async context manager (or
    call :meth:`close`) so the drain tasks and executor shut down cleanly.
    """

    def __init__(
        self,
        service: ConcurrentQueryService | None = None,
        max_workers: int = 4,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
        max_batch_delay: float = DEFAULT_MAX_BATCH_DELAY,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError("pass either a service or its constructor arguments")
        self.service = service or ConcurrentQueryService(**service_kwargs)
        self.max_batch_rows = max_batch_rows
        self.max_batch_delay = max_batch_delay
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="aqp-worker"
        )
        self._ingest_queues: dict[str, asyncio.Queue] = {}
        self._drain_tasks: dict[str, asyncio.Task] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Cancel drain tasks, fail queued ingests and release the executor."""
        if self._closed:
            return
        self._closed = True
        for task in self._drain_tasks.values():
            task.cancel()
        for task in self._drain_tasks.values():
            try:
                await task
            except asyncio.CancelledError:
                pass
        # Anything still sitting in a queue was never dequeued by a drain
        # task; cancel those futures so their awaiting callers don't hang.
        for queue in self._ingest_queues.values():
            while not queue.empty():
                _, future = queue.get_nowait()
                if not future.done():
                    future.cancel()
        self._drain_tasks.clear()
        self._ingest_queues.clear()
        # Waiting for in-flight executor work can take as long as a synopsis
        # rebuild; do it off the event loop so other tasks keep running.
        await asyncio.get_running_loop().run_in_executor(
            None, partial(self._executor.shutdown, wait=True)
        )

    # ------------------------------------------------------------------ #
    # Dispatch

    async def _dispatch(self, fn, *args, **kwargs):
        if self._closed:
            raise RuntimeError("the async query service is closed")
        loop = asyncio.get_running_loop()
        # run_in_executor does not carry contextvars into the worker
        # thread; copy the caller's context so the active trace span (if
        # any) is visible to the service's child spans.  Untraced requests
        # skip the copy — it costs about a microsecond per call.
        if tracing.current_span() is not None:
            call = partial(
                contextvars.copy_context().run, partial(fn, *args, **kwargs)
            )
        else:
            call = partial(fn, *args, **kwargs)
        return await loop.run_in_executor(self._executor, call)

    # ------------------------------------------------------------------ #
    # Coroutine API

    async def query(self, query: Query | str):
        """Execute a query (list of results, or a dict for GROUP BY)."""
        return await self._dispatch(self.service.execute, query)

    async def query_scalar(self, query: Query | str) -> AqpResult:
        """Execute a non-GROUP BY query, returning the first aggregation."""
        return await self._dispatch(self.service.execute_scalar, query)

    async def register_table(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        return await self._dispatch(
            self.service.register_table,
            table,
            params=params,
            partition_size=partition_size,
        )

    async def ingest(
        self, table_name: str, rows: Table, coalesce: bool = True
    ) -> IngestResult:
        """Append rows; small concurrent appends coalesce into one rebuild.

        All callers whose rows land in the same drained batch share a
        single :class:`IngestResult` (one tail recompression).  Validation
        errors (unknown table, schema mismatch) raise immediately in the
        caller, before anything is enqueued, so one bad writer cannot
        poison a batch.
        """
        if self._closed:
            raise RuntimeError("the async query service is closed")
        self.service.database.validate_ingest(table_name, rows)
        if not coalesce:
            return await self._dispatch(self.service.ingest, table_name, rows)
        queue = self._queue_for(table_name)
        future = asyncio.get_running_loop().create_future()
        queue.put_nowait((rows, future))
        return await future

    async def drop_table(self, table_name: str) -> None:
        """Drop a table, retiring its coalescing queue and drain task.

        Without this cleanup, every register/ingest/drop cycle under a new
        name would leak a parked drain task and its queue until close().
        Queued-but-undrained ingests for the table are cancelled.
        """
        if self._closed:
            raise RuntimeError("the async query service is closed")
        await self._retire_queue(table_name)
        await self._dispatch(self.service.drop_table, table_name)
        # An ingest that passed validation while the drop was in flight may
        # have recreated the queue; now that the catalog entry is gone no
        # further ingest can, so one more retirement closes the race (the
        # validate-and-enqueue step is atomic on the event loop).
        await self._retire_queue(table_name)

    async def _retire_queue(self, table_name: str) -> None:
        task = self._drain_tasks.pop(table_name, None)
        queue = self._ingest_queues.pop(table_name, None)
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if queue is not None:
            while not queue.empty():
                _, future = queue.get_nowait()
                if not future.done():
                    future.cancel()

    @property
    def table_names(self) -> list[str]:
        return self.service.table_names

    def schema_for(self, table_name: str):
        """Registered schema of one table (KeyError naming the catalog)."""
        return self.service.table(table_name).store.schema

    async def stat(self, table_name: str) -> dict:
        """Exact row/partition counts of one table (cheap catalog lookup).

        The cluster front end uses this to resolve an ambiguous ingest —
        a worker that died after the WAL append but before the response —
        by checking whether the batch's rows are actually there.
        """
        managed = await self._dispatch(self.service.table, table_name)
        return {
            "table": table_name,
            "rows": managed.num_rows,
            "partitions": managed.num_partitions,
        }

    # ------------------------------------------------------------------ #
    # Durability

    async def checkpoint(self):
        """Snapshot the catalog to the database's data directory.

        Raises :class:`ValueError` when the underlying database was not
        opened durably (no data directory).
        """
        return await self._dispatch(self.service.checkpoint)

    async def persist(self) -> int:
        """fsync the WAL; returns the last durable LSN."""
        return await self._dispatch(self.service.persist)

    # ------------------------------------------------------------------ #
    # Observability

    async def status_extra(self) -> dict:
        """Cache stats + LSN positions for the ``status`` op payload.

        Both async facades implement this, so the server's status payload
        is complete on every deployment shape (the cluster facade fans the
        equivalent out to its workers).
        """
        extra: dict = {}
        inner = self.service
        cache_stats = getattr(inner, "cache_stats", None)
        if cache_stats is not None:
            extra["cache_stats"] = {
                table: dict(stats) for table, stats in cache_stats.items()
            }
        database = getattr(inner, "database", None)
        wal = getattr(database, "wal", None)
        if wal is not None:
            durable = wal.last_lsn
            # The follower applies through the durable commit path, so
            # applied == durable on every role.
            extra["durable_lsn"] = durable
            extra["applied_lsn"] = durable
            extra["last_checkpoint_lsn"] = database.last_checkpoint_lsn
        return extra

    async def metrics(self) -> dict:
        """This process's registry snapshot (the cluster facade fans out)."""
        return obs_metrics.REGISTRY.snapshot()

    async def trace(self, trace_id: str) -> list[dict]:
        """Finished spans recorded in this process for ``trace_id``."""
        return tracing.spans_for(trace_id)

    async def explain(self, sql: str, analyze: bool = False) -> dict:
        """Structured EXPLAIN plan (``analyze=True`` also executes)."""
        return await self._dispatch(self.service.explain, sql, analyze)

    async def workload(self) -> dict:
        """The workload log's normalized-template snapshot."""
        return await self._dispatch(self.service.workload_snapshot)

    async def audit_stats(self) -> dict:
        """The accuracy auditor's counters and recent violations."""
        return await self._dispatch(self.service.audit_snapshot)

    # ------------------------------------------------------------------ #
    # Ingest coalescing

    def _queue_for(self, table_name: str) -> asyncio.Queue:
        if table_name not in self._ingest_queues:
            self._ingest_queues[table_name] = asyncio.Queue()
            self._drain_tasks[table_name] = asyncio.ensure_future(
                self._drain(table_name)
            )
        return self._ingest_queues[table_name]

    async def _drain(self, table_name: str) -> None:
        """Per-table drain loop: batch whatever is pending, ingest once.

        With ``max_batch_delay > 0`` the batch stays open that long after
        its first append arrives, so writers landing within the window
        share one tail recompression even when they don't overlap a
        rebuild; the timer bounds how long a lone small append can wait.
        ``max_batch_rows`` caps the batch regardless of the timer.
        """
        queue = self._ingest_queues[table_name]
        loop = asyncio.get_running_loop()
        carried: tuple | None = None  # dequeued but over-budget for the last batch
        while True:
            rows, future = carried if carried is not None else await queue.get()
            carried = None
            parts = [rows]
            batch_rows = rows.num_rows
            futures = [future]
            try:
                if self.max_batch_delay > 0:
                    deadline = loop.time() + self.max_batch_delay
                    while batch_rows < self.max_batch_rows and carried is None:
                        remaining = deadline - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            more_rows, more_future = await asyncio.wait_for(
                                queue.get(), timeout=remaining
                            )
                        except asyncio.TimeoutError:
                            break
                        if batch_rows + more_rows.num_rows > self.max_batch_rows:
                            carried = (more_rows, more_future)
                        else:
                            parts.append(more_rows)
                            batch_rows += more_rows.num_rows
                            futures.append(more_future)
                while carried is None and not queue.empty():
                    more_rows, more_future = queue.get_nowait()
                    if batch_rows + more_rows.num_rows > self.max_batch_rows:
                        carried = (more_rows, more_future)
                        break
                    parts.append(more_rows)
                    batch_rows += more_rows.num_rows
                    futures.append(more_future)
                rows = Table.concat_all(parts)
                result = await self._dispatch(self.service.ingest, table_name, rows)
            except asyncio.CancelledError:
                if carried is not None and not carried[1].done():
                    carried[1].cancel()
                for f in futures:
                    if not f.done():
                        f.cancel()
                raise
            except Exception as exc:
                for f in futures:
                    if not f.done():
                        f.set_exception(exc)
            else:
                for f in futures:
                    if not f.done():
                        f.set_result(result)


# --------------------------------------------------------------------------- #
# Wire format


def encode_result(result) -> dict:
    """JSON-encodable payload for one execute() return value."""
    if isinstance(result, dict):  # GROUP BY: label -> [AqpResult]
        return {
            "groups": {
                label: [_encode_aqp(r) for r in results]
                for label, results in result.items()
            }
        }
    return {"results": [_encode_aqp(r) for r in result]}


def _encode_aqp(result: AqpResult) -> dict:
    aggregation = result.aggregation
    column = aggregation.column if aggregation.column is not None else "*"
    return {
        "aggregation": f"{aggregation.func.value}({column})",
        "value": _json_float(result.value),
        "lower": _json_float(result.lower),
        "upper": _json_float(result.upper),
        "group": result.group,
    }


def _json_float(value: float) -> float | None:
    """NaN / inf are not valid JSON; encode them as null."""
    return value if isinstance(value, (int, float)) and math.isfinite(value) else None


def _encode_ingest(result: IngestResult) -> dict:
    return {
        "table": result.table_name,
        "appended_rows": result.appended_rows,
        "rebuilt_partitions": result.rebuilt_partitions,
        "total_partitions": result.total_partitions,
        "seconds": result.seconds,
    }


#: Errors the server converts into clean ``{"ok": false}`` responses.
_CLIENT_ERRORS = (KeyError, ValueError, TypeError, ParseError)


class QueryServer:
    """Dual-protocol TCP server over an :class:`AsyncQueryService`.

    Each connection is sniffed: the :data:`~repro.service.framing.MAGIC`
    preamble selects the binary pipelined protocol, anything else the
    legacy JSON-lines dialect (see the module docstring).

    >>> server = QueryServer(async_service)          # doctest: +SKIP
    >>> await server.start()                         # doctest: +SKIP
    >>> host, port = server.address                  # doctest: +SKIP
    """

    def __init__(
        self,
        service: AsyncQueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        line_limit: int = DEFAULT_LINE_LIMIT,
        max_inflight_queries: int | None = DEFAULT_MAX_INFLIGHT_QUERIES,
        max_inflight_ingests: int | None = DEFAULT_MAX_INFLIGHT_INGESTS,
        replication=None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.line_limit = line_limit
        self.max_inflight_queries = max_inflight_queries
        self.max_inflight_ingests = max_inflight_ingests
        #: Optional :class:`repro.replication.ReplicationState`: which
        #: replication role this process plays (None = no replication;
        #: the ``status`` op then reports role "standalone").
        self.replication = replication
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: In-flight request counts per admission class (event-loop-local,
        #: so plain ints suffice — no locking).
        self._inflight = {"query": 0, "ingest": 0}
        #: Requests shed with an ``Overloaded`` response, per class.
        self.shed_counts = {"query": 0, "ingest": 0}

    # ------------------------------------------------------------------ #
    # Admission control

    def _limit_for(self, kind: str) -> int | None:
        return (
            self.max_inflight_ingests
            if kind == "ingest"
            else self.max_inflight_queries
        )

    def _admit(self, kind: str) -> bool:
        """Reserve one in-flight slot, or refuse (caller sheds the request)."""
        limit = self._limit_for(kind)
        if limit is not None and self._inflight[kind] >= limit:
            # shed_counts stays the per-server source of truth for the
            # status payload; the registry mirrors it for the metrics op
            # and the /metrics scrape.
            self.shed_counts[kind] += 1
            _SHED_CELLS[kind].inc()
            return False
        self._inflight[kind] += 1
        return True

    def _release(self, kind: str) -> None:
        self._inflight[kind] -= 1

    def _overloaded_message(self, kind: str) -> str:
        return (
            f"server is at its in-flight {kind} limit "
            f"({self._limit_for(kind)}); retry later"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle

    async def start(self) -> "QueryServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=self.line_limit
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("the server has not been started")
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            # wait_closed() (Python >= 3.12.1) waits for every connection
            # handler to return, and _handle blocks in readline() until its
            # client hangs up — so close lingering connections ourselves
            # instead of hanging on an idle client.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Protocol

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._connections.add(writer)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Small request/response frames + Nagle's algorithm = up to
            # ~40 ms artificial stalls; this workload is exactly that.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            # Negotiation sniff: binary clients lead with the 4-byte magic,
            # JSON-lines requests start with '{'.  Read one byte at a time
            # so a degenerate short first line (e.g. "{}\n") can never
            # stall the sniff waiting for a fourth byte.
            preamble = b""
            while len(preamble) < len(framing.MAGIC):
                byte = await reader.read(1)
                if not byte:
                    return
                preamble += byte
                if preamble == framing.MAGIC[: len(preamble)]:
                    continue
                break
            if preamble == framing.MAGIC:
                await self._serve_binary(reader, writer)
            else:
                await self._serve_json(reader, writer, first=preamble)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_json(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes = b"",
    ) -> None:
        """The legacy newline-delimited-JSON loop (negotiated fallback).

        ``first`` is whatever the negotiation sniff consumed; if it already
        ends the first line, that request is served before reading again —
        blocking in ``readline()`` first would deadlock a client awaiting
        its first response.
        """
        pending = first
        while True:
            if pending.endswith(b"\n"):
                line, pending = pending, b""
            else:
                try:
                    rest = await reader.readline()
                except ValueError as exc:
                    # Line exceeded the buffer limit; the stream cannot be
                    # re-synchronised, so answer with an error frame and
                    # drop this connection only.
                    writer.write(
                        json.dumps(self._error(exc)).encode("utf-8") + b"\n"
                    )
                    await writer.drain()
                    break
                if not rest:
                    break
                line, pending = pending + rest, b""
                if not line.endswith(b"\n"):
                    break  # EOF mid-line
            response = await self._respond(line)
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()

    async def _serve_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The pipelined binary loop: one task per frame, answers by id.

        Frames are admitted (or shed) synchronously in arrival order, then
        executed concurrently; each response is written as a single
        ``write()`` as soon as its work completes, in whatever order that
        happens — clients match responses to requests by id.
        """
        tasks: set[asyncio.Task] = set()
        #: follower_id of the subscription (if any) living on this
        #: connection — OP_WAL_ACK frames carry only an LSN and are
        #: attributed to it.
        subscriber_id: str | None = None
        try:
            while True:
                try:
                    header = await reader.readexactly(framing.HEADER_SIZE)
                except asyncio.IncompleteReadError:
                    break
                op, request_id, payload_len = framing.decode_header(header)
                traced = bool(op & framing.TRACE_FLAG)
                op &= ~framing.TRACE_FLAG
                if payload_len > self.line_limit:
                    # readexactly() is not bounded by the stream limit the
                    # way readline() is, so enforce it explicitly; the
                    # stream cannot be re-synchronised after refusing.
                    writer.write(
                        framing.encode_frame(
                            framing.STATUS_ERROR,
                            request_id,
                            framing.encode_error(
                                "ValueError",
                                f"frame payload of {payload_len} bytes exceeds "
                                f"the {self.line_limit} byte limit",
                            ),
                        )
                    )
                    await writer.drain()
                    break
                payload = await reader.readexactly(payload_len)
                trace: tuple[bytes, bytes] | None = None
                if traced:
                    trailer = await reader.readexactly(framing.TRACE_TRAILER_SIZE)
                    trace = framing.decode_trace_trailer(trailer)
                if op == framing.OP_WAL_ACK:
                    # One-way: no response frame, no admission slot.
                    rep = self.replication
                    if subscriber_id is not None and rep is not None and rep.hub is not None:
                        rep.hub.update_ack(
                            subscriber_id, framing.decode_wal_ack(payload)
                        )
                    continue
                if op == framing.OP_SUBSCRIBE:
                    try:
                        after_lsn, follower_id = framing.decode_subscribe(payload)
                    except (ValueError, struct.error) as exc:
                        writer.write(
                            framing.encode_frame(
                                framing.STATUS_ERROR,
                                request_id,
                                framing.encode_error(type(exc).__name__, str(exc)),
                            )
                        )
                        await writer.drain()
                        continue
                    subscriber_id = follower_id
                    task = asyncio.ensure_future(
                        self._serve_subscription(
                            writer, request_id, after_lsn, follower_id
                        )
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    continue
                kind = "ingest" if op == framing.OP_INGEST else "query"
                request = None
                if op == framing.OP_JSON:
                    # Parse inline so admission classifies JSON-op ingests
                    # correctly (and malformed JSON errors out cleanly).
                    try:
                        request = framing.decode_json(payload)
                    except (
                        json.JSONDecodeError,
                        UnicodeDecodeError,
                    ) as exc:
                        writer.write(
                            framing.encode_frame(
                                framing.STATUS_ERROR,
                                request_id,
                                framing.encode_error(
                                    type(exc).__name__, str(exc)
                                ),
                            )
                        )
                        await writer.drain()
                        continue
                    if isinstance(request, dict) and request.get("op") == "ingest":
                        kind = "ingest"
                if not self._admit(kind):
                    writer.write(
                        framing.encode_frame(
                            framing.STATUS_OVERLOADED,
                            request_id,
                            framing.encode_error(
                                framing.OVERLOADED_ERROR_TYPE,
                                self._overloaded_message(kind),
                            ),
                        )
                    )
                    await writer.drain()
                    continue
                task = asyncio.ensure_future(
                    self._serve_frame(
                        writer, op, request_id, payload, kind, request, trace
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _serve_frame(
        self,
        writer: asyncio.StreamWriter,
        op: int,
        request_id: int,
        payload: bytes,
        kind: str,
        request: dict | None,
        trace: tuple[bytes, bytes] | None = None,
    ) -> None:
        """Execute one admitted binary frame and write its response."""
        started = time.perf_counter()
        try:
            try:
                body = await self._execute_binary_op(op, payload, request, trace)
                status = framing.STATUS_OK
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Same contract as JSON: errors are frames, never dropped
                # connections or stack traces.
                status = framing.STATUS_ERROR
                message = exc.args[0] if exc.args else str(exc)
                body = framing.encode_error(type(exc).__name__, str(message))
            try:
                writer.write(framing.encode_frame(status, request_id, body))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass  # client went away; nothing to answer
        finally:
            _observe_latency(kind, time.perf_counter() - started)
            self._release(kind)

    async def _serve_subscription(
        self, writer: asyncio.StreamWriter, request_id: int, after_lsn: int, follower_id: str
    ) -> None:
        """Run one replication subscription for the connection's lifetime."""
        rep = self.replication
        try:
            if rep is None or rep.hub is None:
                raise ValueError(
                    "this server does not accept replication subscriptions"
                )
            await rep.hub.stream(writer, request_id, after_lsn, follower_id)
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # the follower went away; its grace-period floor remains
        except Exception as exc:
            message = exc.args[0] if exc.args else str(exc)
            try:
                writer.write(
                    framing.encode_frame(
                        framing.STATUS_ERROR,
                        request_id,
                        framing.encode_error(type(exc).__name__, str(message)),
                    )
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    # ------------------------------------------------------------------ #
    # Replication gates

    def _require_writable(self) -> None:
        """Reject external mutations on a read replica (the apply loop
        bypasses the wire entirely, so it is unaffected)."""
        rep = self.replication
        if rep is not None and rep.role == "replica":
            upstream = (
                rep.follower.status["upstream"] if rep.follower is not None else "?"
            )
            raise ValueError(
                f"this worker is a read-only replica (following {upstream}); "
                "send writes to the primary"
            )

    async def _commit_gate(self) -> None:
        """Between committing a mutation and acknowledging it: re-check the
        epoch fence, then wait for the semi-synchronous replication barrier.

        The order matters — a fenced zombie must not ack even a mutation
        its followers already replicated, because the new primary's history
        may be about to diverge from it.
        """
        rep = self.replication
        if rep is None:
            return
        if rep.epoch_file is not None:
            from ..replication.fence import check_fence

            check_fence(rep.epoch_file, rep.epoch)
        hub = rep.hub
        if hub is not None and hub.ack_replicas > 0:
            lsn = hub.database.wal.last_lsn
            if not await hub.wait_replicated(lsn):
                raise RuntimeError(
                    f"replication barrier timed out: lsn {lsn} was not "
                    f"acknowledged by {hub.ack_replicas} follower(s); the "
                    "mutation is durable locally but deliberately "
                    "unacknowledged — retry"
                )

    async def _execute_binary_op(
        self,
        op: int,
        payload: bytes,
        request: dict | None,
        trace: tuple[bytes, bytes] | None = None,
    ) -> bytes:
        if op == framing.OP_PING:
            return b""
        if op == framing.OP_QUERY:
            sql = framing.decode_query(payload)
            hex_trace = (trace[0].hex(), trace[1].hex()) if trace else None
            with self._query_span(sql, hex_trace):
                result = await self.service.query(sql)
            return framing.encode_result(encode_result(result))
        if op == framing.OP_QUERY_BATCH:
            sqls = framing.decode_query_batch(payload)

            async def run_one(sql: str) -> dict:
                try:
                    result = encode_result(await self.service.query(sql))
                    return {"ok": True, "result": result}
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    message = exc.args[0] if exc.args else str(exc)
                    return {
                        "ok": False,
                        "error_type": type(exc).__name__,
                        "error": str(message),
                    }

            items = await asyncio.gather(*(run_one(sql) for sql in sqls))
            return framing.encode_batch_response(list(items))
        if op == framing.OP_INGEST:
            self._require_writable()
            table_name, rows, coalesce = framing.decode_ingest(payload)
            result = await self.service.ingest(table_name, rows, coalesce=coalesce)
            await self._commit_gate()
            # Same crash drill as the JSON path: the batch is WAL-committed
            # but the acknowledgement never leaves the process.  Cluster
            # tests arm this to pin the front end's exactly-once recovery.
            maybe_crash("server.ingest.before_ack")
            return framing.encode_json(_encode_ingest(result))
        if op == framing.OP_JSON:
            if not isinstance(request, dict):
                raise ValueError("requests must be JSON objects")
            return framing.encode_json(await self._execute_op(request))
        raise ValueError(f"unknown binary op {op}")

    async def _respond(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._error(exc)
        if not isinstance(request, dict):
            return self._error(ValueError("requests must be JSON objects"))
        kind = "ingest" if request.get("op") == "ingest" else "query"
        if not self._admit(kind):
            return {
                "ok": False,
                "error": self._overloaded_message(kind),
                "error_type": framing.OVERLOADED_ERROR_TYPE,
            }
        started = time.perf_counter()
        try:
            return {"ok": True, "result": await self._execute_op(request)}
        except _CLIENT_ERRORS as exc:
            return self._error(exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # The documented contract: errors are frames, never dropped
            # connections or stack traces (e.g. a query racing close()).
            return self._error(exc)
        finally:
            _observe_latency(kind, time.perf_counter() - started)
            self._release(kind)

    @staticmethod
    def _error(exc: Exception) -> dict:
        message = exc.args[0] if exc.args else str(exc)
        return {"ok": False, "error": str(message), "error_type": type(exc).__name__}

    async def _execute_op(self, request: dict):
        op = request.get("op")
        if op == "ping":
            return "pong"
        if op == "tables":
            return {"tables": self.service.table_names}
        if op == "stat":
            table_name = request.get("table")
            if not isinstance(table_name, str):
                raise ValueError("stat requests need a 'table' name")
            return await self.service.stat(table_name)
        if op == "query":
            if "sql" not in request:
                raise ValueError("query requests need a 'sql' field")
            sql = request["sql"]
            # SQL-prefix form: "EXPLAIN [ANALYZE] <query>" through the
            # ordinary query op answers the structured plan instead.
            prefixed = split_explain(sql) if isinstance(sql, str) else None
            if prefixed is not None:
                analyze, inner_sql = prefixed
                return {"explain": await self.service.explain(inner_sql, analyze)}
            with self._query_span(sql, self._trace_from_request(request)):
                result = await self.service.query(sql)
            return encode_result(result)
        if op == "ingest":
            self._require_writable()
            table_name, rows = self._rows_from_request(request)
            result = await self.service.ingest(
                table_name, rows, coalesce=bool(request.get("coalesce", True))
            )
            await self._commit_gate()
            # The nastiest distributed window: the batch is WAL-committed
            # but the acknowledgement never leaves the process.  Cluster
            # tests arm this to pin the front end's exactly-once recovery.
            maybe_crash("server.ingest.before_ack")
            return _encode_ingest(result)
        if op == "register":
            self._require_writable()
            table_name, rows = self._rows_from_request(request, registered=False)
            params = request.get("params")
            managed = await self.service.register_table(
                rows,
                params=wire.params_from_payload(params) if params is not None else None,
                partition_size=request.get("partition_size"),
            )
            await self._commit_gate()
            return {
                "table": managed.name,
                "rows": managed.num_rows,
                "partitions": managed.num_partitions,
            }
        if op == "drop":
            self._require_writable()
            table_name = request.get("table")
            if not isinstance(table_name, str):
                raise ValueError("drop requests need a 'table' name")
            await self.service.drop_table(table_name)
            await self._commit_gate()
            return {"table": table_name, "dropped": True}
        if op == "status":
            return await self._status_payload()
        if op == "metrics":
            return {"metrics": await self.service.metrics()}
        if op == "trace":
            trace_id = request.get("trace_id")
            if not isinstance(trace_id, str):
                raise ValueError("trace requests need a 'trace_id' string")
            return {"trace_id": trace_id, "spans": await self.service.trace(trace_id)}
        if op == "explain":
            sql = request.get("sql")
            if not isinstance(sql, str):
                raise ValueError("explain requests need a 'sql' string")
            analyze = bool(request.get("analyze", False))
            prefixed = split_explain(sql)
            if prefixed is not None:  # accept the prefix here too
                analyze = prefixed[0] or analyze
                sql = prefixed[1]
            return {"explain": await self.service.explain(sql, analyze)}
        if op == "workload":
            return {"workload": await self.service.workload()}
        if op == "audit":
            return {"audit": await self.service.audit_stats()}
        if op == "promote":
            return await self._promote(request)
        if op == "follow":
            return self._follow(request)
        if op == "checkpoint":
            result = await self.service.checkpoint()
            return {
                "checkpoint_lsn": result.checkpoint_lsn,
                "snapshot": result.path.name if result.path is not None else None,
                "tables": result.tables,
                "seconds": result.seconds,
                "skipped": result.skipped,
            }
        if op == "persist":
            return {"last_lsn": await self.service.persist()}
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------ #
    # Observability + role transitions

    def _query_attrs(self, sql) -> dict:
        rep = self.replication
        return {
            "sql": sql if isinstance(sql, str) and len(sql) <= 200 else str(sql)[:200],
            "server_role": rep.role if rep is not None else "standalone",
        }

    def _query_span(self, sql, trace: tuple[str, str] | None):
        """Root span for one query request.

        When the client supplied trace ids (binary trailer / JSON
        ``"trace"`` key) the span adopts them and is marked for wire
        propagation, so a cluster front end forwards the trace to its
        shard workers and a worker joins its parse/cache spans to the
        caller's tree.  Untraced requests take the span-free
        :func:`~repro.obs.tracing.slow_watch` path: no span tree is
        built unless the query crosses the slow-query threshold, in
        which case a completed root span is synthesised for the log and
        the ring buffer.
        """
        if trace is not None:
            return tracing.root_span(
                "query",
                trace_id=trace[0],
                parent_id=trace[1],
                attrs=self._query_attrs(sql),
            )
        return tracing.slow_watch("query", lambda: self._query_attrs(sql))

    @staticmethod
    def _trace_from_request(request: dict) -> tuple[str, str] | None:
        """(trace_id, span_id) from a JSON-dialect ``"trace"`` key, if sane."""
        trace = request.get("trace")
        if not isinstance(trace, dict):
            return None
        trace_id = trace.get("trace_id")
        span_id = trace.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return trace_id, span_id
        return None

    async def _status_payload(self) -> dict:
        """The ``status`` op: LSNs, replication role/lag, shed + cache stats."""
        rep = self.replication
        payload: dict = {
            "role": rep.role if rep is not None else "standalone",
            "epoch": rep.epoch if rep is not None else 0,
            "shed_counts": dict(self.shed_counts),
        }
        status_extra = getattr(self.service, "status_extra", None)
        if status_extra is not None:
            # Both async facades implement this (the cluster one fans out
            # to its workers), so cache stats and LSN positions show up on
            # every deployment shape — not just a wrapped QueryService.
            payload.update(await status_extra())
        if rep is not None and rep.hub is not None:
            followers = rep.hub.subscriber_snapshot()
            payload["followers"] = followers
            payload["replicated_lsn"] = rep.hub.replicated_lsn()
            if followers and "durable_lsn" in payload:
                payload["replication_lag"] = payload["durable_lsn"] - min(
                    f["acked_lsn"] for f in followers.values()
                )
        if rep is not None and rep.follower is not None:
            payload["follower"] = dict(rep.follower.status)
        return payload

    async def _promote(self, request: dict) -> dict:
        """Turn this replica into the shard's primary at a new epoch.

        The caller (the cluster front end) has already bumped the epoch
        file, fencing the old primary; this end stops the follower loop
        and starts a replication hub so the surviving replicas can
        re-subscribe here.
        """
        rep = self.replication
        if rep is None or rep.role != "replica" or rep.follower is None:
            raise ValueError("only a running replica can be promoted")
        epoch = request.get("epoch")
        if not isinstance(epoch, int):
            raise ValueError("promote requests need an integer 'epoch'")
        from ..replication.primary import ReplicationHub

        loop = asyncio.get_running_loop()
        follower, rep.follower = rep.follower, None
        await loop.run_in_executor(None, follower.shutdown)
        inner = self.service.service
        hub = ReplicationHub(inner.database, ack_replicas=rep.ack_replicas)
        hub.attach()
        rep.hub = hub
        rep.role = "primary"
        rep.epoch = epoch
        return {
            "role": "primary",
            "epoch": epoch,
            "applied_lsn": inner.database.wal.last_lsn,
        }

    def _follow(self, request: dict) -> dict:
        """Repoint this replica's subscription at a new primary."""
        rep = self.replication
        if rep is None or rep.follower is None:
            raise ValueError("this worker is not following anyone")
        host = request.get("host")
        port = request.get("port")
        if not isinstance(host, str) or not isinstance(port, int):
            raise ValueError("follow requests need 'host' and an integer 'port'")
        rep.follower.retarget(host, port)
        return {
            "upstream": f"{host}:{port}",
            "applied_lsn": self.service.service.database.wal.last_lsn,
        }

    def _rows_from_request(
        self, request: dict, registered: bool = True
    ) -> tuple[str, Table]:
        table_name = request.get("table")
        if not isinstance(table_name, str):
            raise ValueError("ingest/register requests need a 'table' name")
        payload = request.get("rows")
        if not isinstance(payload, dict) or not payload:
            raise ValueError("ingest/register requests need a 'rows' mapping")
        schema = None
        if registered:
            # Decode against the registered schema so numeric columns arrive
            # typed the way the store expects (raises KeyError if unknown).
            schema = self.service.schema_for(table_name)
        elif request.get("schema") is not None:
            # Registrations may carry an explicit schema (the cluster front
            # end does), skipping column-type inference entirely.
            schema = wire.schema_from_payload(request["schema"])
        return table_name, Table.from_dict(payload, name=table_name, schema=schema)


class AsyncQueryClient:
    """Minimal line-protocol client for :class:`QueryServer` (tests, examples).

    One request is in flight per connection at a time; concurrent callers
    sharing a client serialize on an internal lock, so open one client per
    simulated dashboard session for parallel traffic.
    """

    def __init__(
        self, host: str, port: int, line_limit: int = DEFAULT_LINE_LIMIT
    ) -> None:
        self.host = host
        self.port = port
        self.line_limit = line_limit
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncQueryClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=self.line_limit
        )
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncQueryClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, payload: dict) -> dict:
        if self._writer is None:
            raise RuntimeError("client is not connected")
        async with self._lock:
            self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def query(self, sql: str) -> dict:
        """Send a query, returning the decoded result payload (raises on error)."""
        response = await self.request({"op": "query", "sql": sql})
        if not response["ok"]:
            raise RuntimeError(f"{response['error_type']}: {response['error']}")
        return response["result"]

    async def ingest(self, table: str, rows: dict, coalesce: bool = True) -> dict:
        response = await self.request(
            {"op": "ingest", "table": table, "rows": rows, "coalesce": coalesce}
        )
        if not response["ok"]:
            raise RuntimeError(f"{response['error_type']}: {response['error']}")
        return response["result"]


# --------------------------------------------------------------------------- #
# Process entry point


def _build_arg_parser():
    import argparse

    from ..gd.partitioned import DEFAULT_PARTITION_SIZE

    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the approximate query engine over newline-delimited JSON/TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--data-dir",
        default=None,
        help="durable data directory (WAL + snapshots); omit for a purely "
        "in-memory server.  With --shards N this is the cluster root: one "
        "shard-NNNNN data directory per worker plus the CLUSTER manifest",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run a sharded cluster: N worker subprocesses (each a full "
        "durable engine) behind a scatter-gather front end; 1 (default) "
        "serves a single-process engine",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        help="seconds between background snapshot checkpoints (with --data-dir)",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every WAL append (with --data-dir); slower, survives "
        "power loss rather than just process death",
    )
    parser.add_argument(
        "--partition-size", type=int, default=DEFAULT_PARTITION_SIZE
    )
    parser.add_argument(
        "--coalesce-delay",
        type=float,
        default=DEFAULT_MAX_BATCH_DELAY,
        help="max seconds the ingest coalescer keeps a batch open waiting "
        "for more writers",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--result-cache-size",
        type=int,
        default=DEFAULT_RESULT_CACHE_SIZE,
        help="entries in the synopsis-version-keyed result cache "
        "(0 disables; with --shards this applies to every worker)",
    )
    parser.add_argument(
        "--max-inflight-queries",
        type=int,
        default=DEFAULT_MAX_INFLIGHT_QUERIES,
        help="admission control: queries in flight beyond this are shed "
        "with an Overloaded error (0 disables the limit)",
    )
    parser.add_argument(
        "--max-inflight-ingests",
        type=int,
        default=DEFAULT_MAX_INFLIGHT_INGESTS,
        help="admission control: ingests in flight beyond this are shed "
        "with an Overloaded error (0 disables the limit)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="(with --shards) follower workers per shard; they serve "
        "staleness-bounded read scatters and one is promoted when the "
        "shard's primary dies",
    )
    parser.add_argument(
        "--max-replica-lag",
        type=int,
        default=256,
        help="(cluster) a replica serves reads only while its applied LSN "
        "is within this many records of the primary's durable LSN",
    )
    parser.add_argument(
        "--replica-of",
        default=None,
        metavar="HOST:PORT",
        help="run as a read replica subscribed to the given primary "
        "(requires --data-dir; the worker refuses external writes)",
    )
    parser.add_argument(
        "--follower-id",
        default=None,
        help="stable subscriber identity for --replica-of (defaults to the "
        "data directory name)",
    )
    parser.add_argument(
        "--epoch",
        type=int,
        default=0,
        help="replication epoch this worker was spawned at (fencing)",
    )
    parser.add_argument(
        "--epoch-file",
        default=None,
        help="path to the shard's epoch file; mutations re-check it before "
        "acking, so a fenced zombie primary cannot acknowledge writes",
    )
    parser.add_argument(
        "--ack-replicas",
        type=int,
        default=0,
        help="semi-synchronous replication: delay each mutation ack until "
        "this many followers durably acknowledged it (0 = async)",
    )
    parser.add_argument(
        "--ack-timeout",
        type=float,
        default=30.0,
        help="seconds a mutation ack may wait on the replication barrier",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve a Prometheus-text /metrics endpoint on this port "
        "(0 picks a free port; a cluster front end serves the fan-out "
        "merged fleet registry)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log completed root query spans slower than this many "
        "milliseconds as structured JSON lines (default: "
        "REPRO_SLOW_QUERY_MS, else off)",
    )
    parser.add_argument(
        "--slow-log-file",
        default=None,
        help="route slow-query JSON lines to this size-rotated file "
        "instead of stderr (default: REPRO_SLOW_LOG_FILE, else stderr)",
    )
    parser.add_argument(
        "--slow-log-max-mb",
        type=float,
        default=tracing.DEFAULT_SLOW_LOG_MAX_MB,
        help="rotate the slow-query log file at this size; at most "
        f"{tracing.SLOW_LOG_KEEP} rotated generations are kept "
        "(default: REPRO_SLOW_LOG_MAX_MB, else %(default)s)",
    )
    parser.add_argument(
        "--audit-sample",
        type=float,
        default=0.0,
        help="fraction of served queries the background accuracy auditor "
        "recomputes exactly against the lossless GD rows (0 disables; "
        "try 0.01)",
    )
    parser.add_argument(
        "--audit-interval",
        type=float,
        default=5.0,
        help="seconds between background audit passes (with --audit-sample)",
    )
    parser.add_argument(
        "--workload-capacity",
        type=int,
        default=256,
        help="distinct normalized query templates the workload analytics "
        "log retains (LRU; 0 disables the log and the auditor's "
        "stratified replay)",
    )
    return parser


def _admission_kwargs(args) -> dict:
    return {
        "max_inflight_queries": args.max_inflight_queries or None,
        "max_inflight_ingests": args.max_inflight_ingests or None,
    }


def _apply_slow_query_threshold(args) -> None:
    millis = getattr(args, "slow_query_ms", None)
    if millis is not None:
        tracing.TRACER.slow_threshold_seconds = max(millis, 0.0) / 1000.0
    path = getattr(args, "slow_log_file", None)
    if path:
        tracing.TRACER.configure_slow_log(
            path,
            max_mb=getattr(args, "slow_log_max_mb", tracing.DEFAULT_SLOW_LOG_MAX_MB),
        )


def _attach_answer_quality(service, args):
    """Wire the workload log and (optionally) the accuracy auditor onto a
    query service; returns the started auditor (or ``None``) so the serve
    loop can stop its daemon on shutdown."""
    capacity = getattr(args, "workload_capacity", 0) or 0
    if capacity > 0:
        from ..audit.workload import WorkloadLog

        service.workload_log = WorkloadLog(capacity=capacity)
    sample = getattr(args, "audit_sample", 0.0) or 0.0
    if sample > 0:
        from ..audit.auditor import AccuracyAuditor

        service.auditor = AccuracyAuditor(
            service,
            sample_rate=sample,
            interval_seconds=getattr(args, "audit_interval", 5.0),
            workload=service.workload_log,
        ).start()
    return service.auditor


def _start_metrics_endpoint(args, snapshot_fn, ready_fn=None):
    """Start the /metrics HTTP endpoint when --metrics-port was given."""
    if getattr(args, "metrics_port", None) is None:
        return None
    from ..obs.exposition import MetricsHTTPServer

    endpoint = MetricsHTTPServer(
        snapshot_fn, host=args.host, port=args.metrics_port, ready_fn=ready_fn
    ).start()
    print(f"metrics on {args.host}:{endpoint.port}", flush=True)
    return endpoint


def _install_stop_handlers(loop, stop: asyncio.Event) -> None:
    """SIGINT/SIGTERM set the stop event for a graceful shutdown.

    ``REPRO_HANG_ON_SIGTERM=1`` registers a no-op SIGTERM handler instead —
    the wedged-worker drill for the supervisor's SIGTERM → SIGKILL
    escalation (the process then only dies to SIGKILL).
    """
    import os
    import signal

    hang = os.environ.get("REPRO_HANG_ON_SIGTERM") == "1"
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            if hang and signum == signal.SIGTERM:
                loop.add_signal_handler(signum, lambda: None)
            else:
                loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-unix event loops
            pass


async def serve_cluster(args) -> None:
    """Run a sharded cluster front end until SIGINT/SIGTERM.

    Spawns ``--shards`` worker subprocesses (each the plain single-process
    server on its own shard data directory), scatter-gathers through
    :class:`~repro.cluster.service.ClusterQueryService` and serves the
    same JSON-lines protocol on the front-end port.
    """
    from ..cluster.service import AsyncClusterService, ClusterQueryService
    from ..storage.cluster import ClusterLayout

    worker_options = {
        "checkpoint_interval": args.checkpoint_interval,
        "coalesce_delay": args.coalesce_delay,
        "workers_per_shard": args.workers,
        "fsync": args.fsync,
        "result_cache_size": args.result_cache_size,
        # Workers own the rows, so auditing runs inside each worker.
        "audit_sample": args.audit_sample,
        "audit_interval": args.audit_interval,
        "workload_capacity": args.workload_capacity,
    }
    if args.data_dir and ClusterLayout(args.data_dir).read_manifest() is not None:
        cluster = ClusterQueryService.open(
            args.data_dir,
            mode="process",
            expected_shards=args.shards,
            partition_size=args.partition_size,
            replicas=args.replicas or None,
            max_replica_lag=args.max_replica_lag,
            worker_options=worker_options,
        )
        print(
            f"recovered cluster of {cluster.num_shards} shard(s), "
            f"{len(cluster.table_names)} table(s) from {args.data_dir}",
            flush=True,
        )
    else:
        cluster = ClusterQueryService(
            num_shards=args.shards,
            path=args.data_dir or None,
            mode="process",
            partition_size=args.partition_size,
            replicas=args.replicas,
            max_replica_lag=args.max_replica_lag,
            worker_options=worker_options,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    _install_stop_handlers(loop, stop)
    _apply_slow_query_threshold(args)
    listening = threading.Event()
    metrics_endpoint = _start_metrics_endpoint(
        args,
        cluster.metrics,
        # Ready = the front end accepts connections AND every worker
        # answers a supervisor ping.
        ready_fn=lambda: listening.is_set() and cluster.ready(),
    )
    try:
        async with AsyncClusterService(
            cluster, max_workers=args.workers
        ) as front_end:
            async with QueryServer(
                front_end, host=args.host, port=args.port, **_admission_kwargs(args)
            ) as server:
                print(f"listening on {server.host}:{server.port}", flush=True)
                listening.set()
                await stop.wait()
    finally:
        if metrics_endpoint is not None:
            metrics_endpoint.stop()
        # Graceful worker shutdown: SIGTERM triggers each worker's final
        # checkpoint, so the next start recovers from snapshots.
        await loop.run_in_executor(None, cluster.close)


async def serve_replica(args) -> None:
    """Run a read replica: recover the local data dir, subscribe to the
    primary, serve queries (and refuse external writes) until stopped."""
    from ..replication import FollowerLoop, ReplicaApplier, ReplicationState

    if not args.data_dir:
        raise SystemExit("--replica-of requires --data-dir")
    host, _, port_text = args.replica_of.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit("--replica-of must be HOST:PORT")
    database = Database.open(
        args.data_dir, fsync=args.fsync, partition_size=args.partition_size
    )
    service = ConcurrentQueryService(
        database=database, result_cache_size=args.result_cache_size
    )
    applier = ReplicaApplier(service)
    follower_id = args.follower_id or Path(args.data_dir).name
    follower = FollowerLoop(applier, follower_id, host, int(port_text))
    replication = ReplicationState(
        role="replica",
        epoch=args.epoch,
        epoch_file=Path(args.epoch_file) if args.epoch_file else None,
        follower=follower,
        ack_replicas=args.ack_replicas,
    )
    checkpointer = BackgroundCheckpointer(
        service, interval_seconds=args.checkpoint_interval
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    _install_stop_handlers(loop, stop)
    _apply_slow_query_threshold(args)
    # Replicas are the preferred audit host: replication applies the same
    # committed batches, so the exact recomputation never taxes the primary.
    auditor = _attach_answer_quality(service, args)
    listening = threading.Event()
    metrics_endpoint = _start_metrics_endpoint(
        args, obs_metrics.REGISTRY.snapshot, ready_fn=listening.is_set
    )
    async with AsyncQueryService(
        service=service,
        max_workers=args.workers,
        max_batch_delay=args.coalesce_delay,
    ) as async_service:
        async with QueryServer(
            async_service,
            host=args.host,
            port=args.port,
            replication=replication,
            **_admission_kwargs(args),
        ) as server:
            checkpointer.start()
            follower.start()
            print(f"listening on {server.host}:{server.port}", flush=True)
            listening.set()
            try:
                await stop.wait()
            finally:
                # A promotion swaps rep.follower for a hub; only stop the
                # loop if we are still following someone.
                if auditor is not None:
                    await loop.run_in_executor(None, auditor.stop)
                if replication.follower is not None:
                    await loop.run_in_executor(
                        None, replication.follower.shutdown
                    )
                final = await loop.run_in_executor(None, checkpointer.stop)
                if final is None and checkpointer.last_error is not None:
                    print(
                        "final checkpoint failed: "
                        f"{checkpointer.last_error!r}; the next start "
                        "will recover this state from the WAL instead",
                        flush=True,
                    )
    if metrics_endpoint is not None:
        metrics_endpoint.stop()
    database.close()


async def serve(args) -> None:
    """Run a server until SIGINT/SIGTERM; durable when --data-dir is set."""
    if getattr(args, "shards", 1) > 1 or getattr(args, "replicas", 0) > 0:
        # Replicas are follower subprocesses under the cluster supervisor,
        # so even a 1-shard deployment with replicas is a cluster.
        await serve_cluster(args)
        return
    if getattr(args, "replica_of", None):
        await serve_replica(args)
        return

    if args.data_dir:
        from ..storage.cluster import ClusterLayout

        manifest = ClusterLayout(args.data_dir).read_manifest()
        if manifest is not None:
            # Opening a cluster root as a single-node data dir would boot
            # an empty catalog and scribble wal/snapshots into the cluster
            # directory — refuse instead of silently "losing" the data.
            raise SystemExit(
                f"{args.data_dir!r} is a sharded cluster root "
                f"({manifest.num_shards} shard(s)); start it with "
                f"--shards {manifest.num_shards}"
            )
        database = Database.open(
            args.data_dir, fsync=args.fsync, partition_size=args.partition_size
        )
        info = database.recovery_info
        print(
            f"recovered {len(database.table_names)} table(s) from {args.data_dir} "
            f"(snapshot lsn {info.snapshot_lsn}, {info.replayed_records} WAL "
            f"record(s) replayed, {info.rebuilt_partitions} partition "
            f"synopsis(es) rebuilt in {info.seconds:.2f}s)",
            flush=True,
        )
    else:
        database = Database(partition_size=args.partition_size)
    service = ConcurrentQueryService(
        database=database, result_cache_size=args.result_cache_size
    )
    checkpointer = (
        BackgroundCheckpointer(service, interval_seconds=args.checkpoint_interval)
        if args.data_dir
        else None
    )
    replication = None
    if args.data_dir:
        # Every durable server can feed followers; it only *behaves* as a
        # fenced/semi-sync primary when the cluster wires it up that way.
        from ..replication import ReplicationHub, ReplicationState

        ack_replicas = getattr(args, "ack_replicas", 0)
        epoch_file = getattr(args, "epoch_file", None)
        hub = ReplicationHub(
            database,
            ack_replicas=ack_replicas,
            ack_timeout=getattr(args, "ack_timeout", 30.0),
        )
        hub.attach()
        replication = ReplicationState(
            role="primary" if (epoch_file or ack_replicas) else "standalone",
            epoch=getattr(args, "epoch", 0),
            epoch_file=Path(epoch_file) if epoch_file else None,
            hub=hub,
            ack_replicas=ack_replicas,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    _install_stop_handlers(loop, stop)
    _apply_slow_query_threshold(args)
    auditor = _attach_answer_quality(service, args)
    # Readiness: recovery already completed above (Database.open replays
    # the WAL before returning), so ready == accepting connections.
    listening = threading.Event()
    metrics_endpoint = _start_metrics_endpoint(
        args, obs_metrics.REGISTRY.snapshot, ready_fn=listening.is_set
    )
    async with AsyncQueryService(
        service=service,
        max_workers=args.workers,
        max_batch_delay=args.coalesce_delay,
    ) as async_service:
        async with QueryServer(
            async_service,
            host=args.host,
            port=args.port,
            replication=replication,
            **_admission_kwargs(args),
        ) as server:
            if checkpointer is not None:
                checkpointer.start()
            print(f"listening on {server.host}:{server.port}", flush=True)
            listening.set()
            try:
                await stop.wait()
            finally:
                if auditor is not None:
                    await loop.run_in_executor(None, auditor.stop)
                if checkpointer is not None:
                    # Final checkpoint so the next start recovers from a
                    # snapshot instead of replaying the whole WAL.
                    final = await loop.run_in_executor(None, checkpointer.stop)
                    if final is None and checkpointer.last_error is not None:
                        print(
                            "final checkpoint failed: "
                            f"{checkpointer.last_error!r}; the next start "
                            "will recover this state from the WAL instead",
                            flush=True,
                        )
    if metrics_endpoint is not None:
        metrics_endpoint.stop()
    if args.data_dir:
        database.close()


def main(argv=None) -> None:
    args = _build_arg_parser().parse_args(argv)
    asyncio.run(serve(args))


if __name__ == "__main__":
    main()
