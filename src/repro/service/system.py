"""Adapter exposing a :class:`~repro.service.database.QueryService` table
through the :class:`~repro.baselines.base.AqpSystem` interface, so the
partitioned engine can sit next to the monolithic PairwiseHist and the
baselines in the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..baselines.base import BaselineResult, UnsupportedQueryError
from ..sql.ast import Query
from .database import QueryService


@dataclass
class QueryServiceSystem:
    """One table of a query service wrapped as an evaluated AQP system."""

    service: QueryService
    table_name: str
    name: str = "PairwiseHist (partitioned)"

    @classmethod
    def fit(
        cls,
        table: Table,
        sample_size: int | None = 100_000,
        partition_size: int | None = None,
        params: PairwiseHistParams | None = None,
        max_workers: int | None = None,
        executor: str | None = None,
        name: str = "PairwiseHist (partitioned)",
    ) -> "QueryServiceSystem":
        """Stand up a single-table service for benchmarking."""
        params = params or PairwiseHistParams.with_defaults(sample_size=sample_size)
        kwargs = {"max_workers": max_workers, "executor": executor}
        if partition_size is not None:
            kwargs["partition_size"] = partition_size
        service = QueryService(**kwargs)
        service.register_table(table, params=params)
        return cls(service=service, table_name=table.name, name=name)

    @property
    def construction_seconds(self) -> float:
        return self.service.table(self.table_name).engine.construction_seconds

    def synopsis_bytes(self) -> int:
        return self.service.table(self.table_name).synopsis_bytes()

    def estimate(self, query: Query) -> BaselineResult:
        if query.group_by is not None:
            raise UnsupportedQueryError("the harness compares non-GROUP BY queries")
        result = self.service.execute_scalar(query)
        return BaselineResult(value=result.value, lower=result.lower, upper=result.upper)
