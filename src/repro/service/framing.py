"""Binary wire frames for the fast query-path protocol.

The JSON-lines protocol pays a per-request JSON encode/decode plus a
strict request-response turnaround per connection.  This module defines
the length-prefixed binary frames that replace it on the hot path, built
on the framing primitives consolidated in :mod:`repro.storage.codec` so
the wire format shares one source of framing truth with the on-disk
formats.

Negotiation
-----------
A binary client opens its connection by sending the 4-byte magic
:data:`MAGIC`.  JSON-lines requests always start with ``{`` (0x7B), so
the server sniffs the first bytes of every connection: magic → binary
frames, anything else → the legacy newline-delimited-JSON protocol.
Existing clients keep working unchanged.

Frame layout (all integers little-endian)
-----------------------------------------
Request frame::

    <B op> <Q request_id> <I payload_len> payload

Response frame::

    <B status> <Q request_id> <I payload_len> payload

Responses are matched to requests by ``request_id`` and may arrive in
any order — clients issue many in-flight requests per connection (true
pipelining) and the server answers each as soon as its work completes.

Ops / payloads
--------------
* ``OP_PING`` (1) — empty payload; OK response payload is empty.
* ``OP_QUERY`` (2) — ``pack_string(sql)``; OK payload is a result block.
* ``OP_QUERY_BATCH`` (3) — ``<I n>`` then n × ``pack_string(sql)``; OK
  payload is ``<I n>`` then n × (``<B ok>`` + result block | error
  block).  One frame carries many queries — the cluster front end
  coalesces concurrent scatters to the same shard into one of these.
* ``OP_INGEST`` (4) — ``<B coalesce>`` + ``pack_string(table)`` +
  ``codec.encode_table(rows)`` (the lossless binary table codec — no
  JSON round trip for row payloads); OK payload is a JSON object.
* ``OP_JSON`` (5) — a JSON-encoded request object (the same shape the
  JSON-lines protocol accepts), for cold-path ops (register, drop,
  tables, stat, checkpoint, persist, status, promote, follow, explain,
  workload, audit); OK payload is the JSON result.
* ``OP_SUBSCRIBE`` (6) — ``<Q after_lsn>`` + ``pack_string(follower_id)``.
  A replication follower sends this once; the server then streams
  ``STATUS_OK`` frames tagged with the subscribe request id for the life
  of the connection.  Each stream payload starts with a kind byte:
  :data:`REPL_WAL_BATCH` (a compressed run of WAL records) or
  :data:`REPL_SNAPSHOT_SEED` (a full snapshot, sent first when the
  follower's position is behind the WAL truncation horizon).
* ``OP_WAL_ACK`` (7) — ``<Q lsn>``: the follower's durably-applied
  position.  One-way; the server never responds to it.  Feeds the
  primary's retention floor and the semi-synchronous ack barrier.

Result block::

    <B kind>            0 = scalar list, 1 = GROUP BY
    scalar list: <I n> then per result:
        pack_string(aggregation label)
        <3d> value, lower, upper   (NaN encodes JSON null)
        pack_optional_string(group)
    groups: <I n> then per group: pack_string(label) + scalar list

Error block: ``pack_string(error_type) + pack_string(message)``.

Statuses: ``STATUS_OK`` (0), ``STATUS_ERROR`` (1) and
``STATUS_OVERLOADED`` (2) — the admission-control shed response, whose
payload is an error block with type ``"Overloaded"``.
"""

from __future__ import annotations

import json
import math
import struct
import zlib

from ..data.table import Table
from ..storage.codec import (
    decode_table,
    encode_table,
    pack_optional_string,
    pack_string,
    unpack_optional_string,
    unpack_string,
)

#: Connection preamble a binary client sends once after connecting.
MAGIC = b"AQP1"

#: Frame header: op/status byte, request id, payload length.
HEADER = struct.Struct("<BQI")
HEADER_SIZE = HEADER.size

# Request ops
OP_PING = 1
OP_QUERY = 2
OP_QUERY_BATCH = 3
OP_INGEST = 4
OP_JSON = 5
OP_SUBSCRIBE = 6
OP_WAL_ACK = 7

# Replication stream payload kinds (first byte of every stream frame a
# subscription receives).
REPL_WAL_BATCH = 1
REPL_SNAPSHOT_SEED = 2

# Response statuses
STATUS_OK = 0
STATUS_ERROR = 1
STATUS_OVERLOADED = 2

#: error_type carried by STATUS_OVERLOADED frames (and the JSON-lines
#: equivalent ``{"ok": false, "error_type": "Overloaded"}``).
OVERLOADED_ERROR_TYPE = "Overloaded"

#: High bit of the op byte: a 24-byte trace trailer (16-byte trace id +
#: 8-byte span id) follows the payload.  ``payload_len`` still counts
#: the payload alone, so readers that mask the flag off parse the frame
#: exactly as before; clients that never set the flag are byte-identical
#: to the pre-trace protocol.
TRACE_FLAG = 0x80

#: Trace trailer: raw trace id then parent span id.
TRACE_TRAILER = struct.Struct("<16s8s")
TRACE_TRAILER_SIZE = TRACE_TRAILER.size


def encode_frame(
    tag: int,
    request_id: int,
    payload: bytes = b"",
    trace: tuple[bytes, bytes] | None = None,
) -> bytes:
    """One complete frame (request or response — the layout is shared).

    ``trace=(trace_id16, span_id8)`` appends the trace trailer and sets
    :data:`TRACE_FLAG` on the tag byte.
    """
    if trace is None:
        return HEADER.pack(tag, request_id, len(payload)) + payload
    trace_id, span_id = trace
    return (
        HEADER.pack(tag | TRACE_FLAG, request_id, len(payload))
        + payload
        + TRACE_TRAILER.pack(trace_id, span_id)
    )


def decode_trace_trailer(trailer: bytes) -> tuple[bytes, bytes]:
    """(trace_id16, span_id8) from the 24-byte trailer."""
    trace_id, span_id = TRACE_TRAILER.unpack(trailer)
    return trace_id, span_id


def decode_header(header: bytes) -> tuple[int, int, int]:
    """(op_or_status, request_id, payload_len) from a 13-byte header."""
    return HEADER.unpack(header)


# --------------------------------------------------------------------------- #
# Request payloads


def encode_query(sql: str) -> bytes:
    return pack_string(sql)


def decode_query(payload: bytes) -> str:
    sql, _ = unpack_string(memoryview(payload), 0)
    return sql


def encode_query_batch(sqls: list[str]) -> bytes:
    return struct.pack("<I", len(sqls)) + b"".join(pack_string(s) for s in sqls)


def decode_query_batch(payload: bytes) -> list[str]:
    buffer = memoryview(payload)
    (count,) = struct.unpack_from("<I", buffer, 0)
    offset = 4
    sqls: list[str] = []
    for _ in range(count):
        sql, offset = unpack_string(buffer, offset)
        sqls.append(sql)
    return sqls


def encode_ingest(table_name: str, rows: Table, coalesce: bool = True) -> bytes:
    return (
        struct.pack("<B", bool(coalesce))
        + pack_string(table_name)
        + encode_table(rows)
    )


def decode_ingest(payload: bytes) -> tuple[str, Table, bool]:
    buffer = memoryview(payload)
    (coalesce,) = struct.unpack_from("<B", buffer, 0)
    table_name, offset = unpack_string(buffer, 1)
    rows, _ = decode_table(buffer, offset)
    return table_name, rows, bool(coalesce)


def encode_json(obj) -> bytes:
    return json.dumps(obj).encode("utf-8")


def decode_json(payload: bytes):
    return json.loads(payload)


# --------------------------------------------------------------------------- #
# Result / error payloads

_KIND_SCALAR = 0
_KIND_GROUPS = 1


def _pack_double(value) -> bytes:
    """A float slot; ``None`` (JSON null) is carried as NaN."""
    return struct.pack("<d", float("nan") if value is None else float(value))


def _unpack_double(buffer: memoryview, offset: int):
    (value,) = struct.unpack_from("<d", buffer, offset)
    return (None if math.isnan(value) else value), offset + 8


def _encode_result_list(results: list[dict]) -> bytes:
    parts = [struct.pack("<I", len(results))]
    for result in results:
        parts.append(pack_string(result["aggregation"]))
        parts.append(_pack_double(result["value"]))
        parts.append(_pack_double(result["lower"]))
        parts.append(_pack_double(result["upper"]))
        parts.append(pack_optional_string(result.get("group")))
    return b"".join(parts)


def _decode_result_list(buffer: memoryview, offset: int) -> tuple[list[dict], int]:
    (count,) = struct.unpack_from("<I", buffer, offset)
    offset += 4
    results: list[dict] = []
    for _ in range(count):
        aggregation, offset = unpack_string(buffer, offset)
        value, offset = _unpack_double(buffer, offset)
        lower, offset = _unpack_double(buffer, offset)
        upper, offset = _unpack_double(buffer, offset)
        group, offset = unpack_optional_string(buffer, offset)
        results.append(
            {
                "aggregation": aggregation,
                "value": value,
                "lower": lower,
                "upper": upper,
                "group": group,
            }
        )
    return results, offset


def encode_result(result: dict) -> bytes:
    """Binary encoding of one ``server.encode_result`` payload dict."""
    if "groups" in result:
        parts = [struct.pack("<BI", _KIND_GROUPS, len(result["groups"]))]
        for label, results in result["groups"].items():
            parts.append(pack_string(label))
            parts.append(_encode_result_list(results))
        return b"".join(parts)
    return struct.pack("<B", _KIND_SCALAR) + _encode_result_list(result["results"])


def decode_result(payload: bytes) -> dict:
    """Inverse of :func:`encode_result` — same dict shape as the JSON path."""
    buffer = memoryview(payload)
    (kind,) = struct.unpack_from("<B", buffer, 0)
    if kind == _KIND_SCALAR:
        results, _ = _decode_result_list(buffer, 1)
        return {"results": results}
    if kind != _KIND_GROUPS:
        raise ValueError(f"unknown result kind {kind}")
    (count,) = struct.unpack_from("<I", buffer, 1)
    offset = 5
    groups: dict[str, list[dict]] = {}
    for _ in range(count):
        label, offset = unpack_string(buffer, offset)
        groups[label], offset = _decode_result_list(buffer, offset)
    return {"groups": groups}


def encode_error(error_type: str, message: str) -> bytes:
    return pack_string(error_type) + pack_string(message)


def decode_error(payload: bytes) -> tuple[str, str]:
    buffer = memoryview(payload)
    error_type, offset = unpack_string(buffer, 0)
    message, _ = unpack_string(buffer, offset)
    return error_type, message


def encode_batch_response(items: list[dict]) -> bytes:
    """Per-query outcomes of one ``OP_QUERY_BATCH`` frame.

    Each item is either ``{"ok": True, "result": <result dict>}`` or
    ``{"ok": False, "error_type": ..., "error": ...}``.
    """
    parts = [struct.pack("<I", len(items))]
    for item in items:
        if item.get("ok"):
            block = encode_result(item["result"])
            parts.append(struct.pack("<B", 1))
        else:
            block = encode_error(str(item["error_type"]), str(item["error"]))
            parts.append(struct.pack("<B", 0))
        parts.append(struct.pack("<I", len(block)))
        parts.append(block)
    return b"".join(parts)


def decode_batch_response(payload: bytes) -> list[dict]:
    buffer = memoryview(payload)
    (count,) = struct.unpack_from("<I", buffer, 0)
    offset = 4
    items: list[dict] = []
    for _ in range(count):
        ok, length = struct.unpack_from("<BI", buffer, offset)
        offset += 5
        block = bytes(buffer[offset : offset + length])
        offset += length
        if ok:
            items.append({"ok": True, "result": decode_result(block)})
        else:
            error_type, message = decode_error(block)
            items.append({"ok": False, "error_type": error_type, "error": message})
    return items


# --------------------------------------------------------------------------- #
# Replication payloads (OP_SUBSCRIBE / OP_WAL_ACK / stream frames)

_WAL_BATCH_HEADER = struct.Struct("<BQQII")  # kind, first, last, count, raw_len
_WAL_RECORD_HEADER = struct.Struct("<QBI")  # lsn, rtype, payload length
_SEED_HEADER = struct.Struct("<BQI")  # kind, checkpoint_lsn, file count


def encode_subscribe(after_lsn: int, follower_id: str) -> bytes:
    return struct.pack("<Q", after_lsn) + pack_string(follower_id)


def decode_subscribe(payload: bytes) -> tuple[int, str]:
    buffer = memoryview(payload)
    (after_lsn,) = struct.unpack_from("<Q", buffer, 0)
    follower_id, _ = unpack_string(buffer, 8)
    return after_lsn, follower_id


def encode_wal_ack(lsn: int) -> bytes:
    return struct.pack("<Q", lsn)


def decode_wal_ack(payload: bytes) -> int:
    (lsn,) = struct.unpack("<Q", payload)
    return lsn


def encode_wal_batch(records: list[tuple[int, int, bytes]]) -> bytes:
    """A contiguous run of WAL records, zlib-compressed as one block.

    Redo records of one table are highly self-similar (same column names,
    overlapping value distributions), so compressing the concatenated run
    beats per-record compression by a wide margin.
    """
    if not records:
        raise ValueError("a WAL batch must carry at least one record")
    raw = b"".join(
        _WAL_RECORD_HEADER.pack(lsn, rtype, len(payload)) + payload
        for lsn, rtype, payload in records
    )
    header = _WAL_BATCH_HEADER.pack(
        REPL_WAL_BATCH, records[0][0], records[-1][0], len(records), len(raw)
    )
    return header + zlib.compress(raw, 1)


def decode_wal_batch(payload: bytes) -> list[tuple[int, int, bytes]]:
    kind, first, last, count, raw_len = _WAL_BATCH_HEADER.unpack_from(payload, 0)
    if kind != REPL_WAL_BATCH:
        raise ValueError(f"not a WAL batch frame (kind {kind})")
    raw = memoryview(zlib.decompress(payload[_WAL_BATCH_HEADER.size :]))
    if len(raw) != raw_len:
        raise ValueError("WAL batch length mismatch after decompression")
    records: list[tuple[int, int, bytes]] = []
    offset = 0
    for _ in range(count):
        lsn, rtype, length = _WAL_RECORD_HEADER.unpack_from(raw, offset)
        offset += _WAL_RECORD_HEADER.size
        records.append((lsn, rtype, bytes(raw[offset : offset + length])))
        offset += length
    if records and (records[0][0] != first or records[-1][0] != last):
        raise ValueError("WAL batch LSN range mismatch")
    return records


def encode_snapshot_seed(checkpoint_lsn: int, files: list[tuple[str, bytes]]) -> bytes:
    """A full snapshot for a follower behind the WAL truncation horizon.

    ``files`` are ``(relative_path, contents)`` pairs — the snapshot
    directory name plus each file within it, so the follower can install
    the directory verbatim and recover through the normal snapshot loader.
    """
    parts = [_SEED_HEADER.pack(REPL_SNAPSHOT_SEED, checkpoint_lsn, len(files))]
    for name, data in files:
        compressed = zlib.compress(data, 1)
        parts.append(pack_string(name))
        parts.append(struct.pack("<II", len(data), len(compressed)))
        parts.append(compressed)
    return b"".join(parts)


def decode_snapshot_seed(payload: bytes) -> tuple[int, list[tuple[str, bytes]]]:
    buffer = memoryview(payload)
    kind, checkpoint_lsn, count = _SEED_HEADER.unpack_from(buffer, 0)
    if kind != REPL_SNAPSHOT_SEED:
        raise ValueError(f"not a snapshot seed frame (kind {kind})")
    offset = _SEED_HEADER.size
    files: list[tuple[str, bytes]] = []
    for _ in range(count):
        name, offset = unpack_string(buffer, offset)
        raw_len, comp_len = struct.unpack_from("<II", buffer, offset)
        offset += 8
        data = zlib.decompress(bytes(buffer[offset : offset + comp_len]))
        offset += comp_len
        if len(data) != raw_len:
            raise ValueError(f"seed file {name!r} length mismatch")
        files.append((name, data))
    return checkpoint_lsn, files


def decode_replication_kind(payload: bytes) -> int:
    """The stream-frame kind byte (REPL_WAL_BATCH / REPL_SNAPSHOT_SEED)."""
    if not payload:
        raise ValueError("empty replication stream frame")
    return payload[0]
