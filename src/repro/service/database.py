"""Multi-table database and SQL query service over partitioned engines.

The monolithic pipeline (one table → one synopsis → one engine) becomes a
service here:

* :class:`Database` is the catalog and maintenance layer.  Registering a
  table shards it into a :class:`~repro.gd.partitioned.PartitionedStore`,
  builds one PairwiseHist per partition in parallel and merges them into
  the queryable synopsis.  :meth:`Database.ingest` streams new rows in:
  only the tail partition's store and synopsis are rebuilt, the merged
  synopsis is recomposed from the (mostly untouched) per-partition parts
  and swapped into the live engine.
* :class:`QueryService` is the SQL front end: it parses queries, routes
  them by table name to the owning engine and exposes streaming ingestion.

This is the Fig. 2 pipeline including the red incremental-update arrows,
generalised to many tables with bounded-cost appends.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..core.builder import build_partition_synopses, snapshot_partition_input
from ..core.engine import AqpResult, PairwiseHistEngine
from ..core.params import PairwiseHistParams
from ..core.serialization import serialize_partitioned, synopsis_size_bytes
from ..core.synopsis import PairwiseHist
from ..data.table import Table
from ..gd.greedygd import GreedyGDConfig
from ..gd.partitioned import DEFAULT_PARTITION_SIZE, PartitionedStore
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..sql.ast import Query
from ..sql.parser import parse_query_cached

_RESULT_CACHE_LOOKUPS = obs_metrics.counter(
    "aqp_result_cache_lookups_total",
    "Synopsis-version-keyed result cache lookups, by table and outcome.",
    labelnames=("table", "outcome"),
)
_SYNOPSIS_BUILDS = obs_metrics.counter(
    "aqp_synopsis_builds_total",
    "Per-partition synopsis builds (registration + incremental ingest).",
    labelnames=("table",),
)


@dataclass
class IngestResult:
    """Outcome of one streaming append: what changed and what it cost."""

    table_name: str
    appended_rows: int
    rebuilt_partitions: list[int]
    total_partitions: int
    seconds: float

    @property
    def untouched_partitions(self) -> int:
        return self.total_partitions - len(self.rebuilt_partitions)


@dataclass
class StagedIngest:
    """An ingest whose rebuild is done but whose results are unpublished.

    Produced by :meth:`Database.stage_ingest` (the expensive, off-lock
    phase) and consumed by :meth:`Database.commit_ingest` (the cheap swap
    that a concurrent front end runs under the table's write lock).
    """

    table_name: str
    appended_rows: int
    affected: list[int]
    #: Full replacement partition-synopsis list (``None`` for a no-op append).
    synopses: list[PairwiseHist] | None
    merged: PairwiseHist | None
    total_partitions: int
    started: float
    #: The raw appended rows — a durable database logs them to its WAL at
    #: commit time, so recovery can replay exactly the committed batches.
    rows: Table | None = None
    #: The store's partition list as assembled by this append.  Committing
    #: publishes it as the table's durable (checkpointable) partition set.
    partitions: list | None = None


@dataclass
class ManagedTable:
    """One registered table: partitioned store, per-partition synopses, engine."""

    name: str
    store: PartitionedStore
    params: PairwiseHistParams
    partition_synopses: list[PairwiseHist]
    engine: PairwiseHistEngine
    #: Total partition-synopsis builds over the table's lifetime — the
    #: incremental-maintenance cost metric (grows by the number of affected
    #: partitions per ingest, not by the partition count).
    synopsis_builds: int = 0
    #: The partition list as of the last *committed* ingest.  The store's
    #: own list advances during :meth:`Database.stage_ingest` (off-lock,
    #: before the commit publishes synopses and the WAL record), so a
    #: checkpoint capturing mid-ingest state must snapshot this list, not
    #: ``store.partitions`` — otherwise it would persist rows whose WAL
    #: record does not exist yet and recovery would apply them twice.
    committed_partitions: list | None = None
    #: Version of the published (queryable) synopsis, drawn from one
    #: global monotonic counter at registration and re-drawn by every
    #: ingest commit that swaps synopses in.  Result-cache keys include
    #: it, so the commit pointer swap doubles as cache invalidation —
    #: and a drop + re-register under the same name can never collide
    #: with stale entries (the counter never repeats).
    synopsis_version: int = 0

    @property
    def num_rows(self) -> int:
        return self.store.num_rows

    @property
    def num_partitions(self) -> int:
        return self.store.num_partitions

    def compressed_bytes(self) -> int:
        return self.store.compressed_bytes()

    def synopsis_bytes(self) -> int:
        """Persisted synopsis size: the framed per-partition payload.

        Partitioned synopses are stored per partition (so an append only
        rewrites the tail's blob) and merged at load time; the merged
        synopsis is a transient in-memory query accelerator whose union
        grids are not what lands on disk.
        """
        return len(self.serialized_partition_synopses())

    def merged_synopsis_bytes(self) -> int:
        """In-memory serialized size of the merged, queryable synopsis."""
        return synopsis_size_bytes(self.engine.synopsis)

    def serialized_partition_synopses(self) -> bytes:
        """Framed payload of every per-partition synopsis (PWHP format)."""
        return serialize_partitioned(self.partition_synopses)


class Database:
    """Catalog + maintenance layer: registration, ingestion, synopsis refresh."""

    #: One process-wide monotonic source of synopsis versions (class-level
    #: on purpose: versions stay unique across databases and across drop +
    #: re-register cycles, so stale cache keys can never alias).
    _version_counter = itertools.count(1)

    def __init__(
        self,
        default_params: PairwiseHistParams | None = None,
        partition_size: int = DEFAULT_PARTITION_SIZE,
        max_workers: int | None = None,
        executor: str | None = None,
        gd_config: GreedyGDConfig | None = None,
    ) -> None:
        self.default_params = default_params or PairwiseHistParams.with_defaults(
            sample_size=100_000
        )
        self.partition_size = partition_size
        self.max_workers = max_workers
        self.executor = executor
        self.gd_config = gd_config
        self._tables: dict[str, ManagedTable] = {}

    # ------------------------------------------------------------------ #
    # Catalog

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def table(self, name: str) -> ManagedTable:
        if name not in self._tables:
            raise KeyError(
                f"no table named {name!r} is registered (have: {self.table_names})"
            )
        return self._tables[name]

    def engine(self, name: str) -> PairwiseHistEngine:
        return self.table(name).engine

    def drop(self, name: str) -> None:
        self.table(name)
        del self._tables[name]

    # ------------------------------------------------------------------ #
    # Registration

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        """Shard, compress and summarise a table, making it queryable."""
        managed = self._build_managed(table, params, partition_size)
        self._publish_registration(managed, table)
        return managed

    def _build_managed(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        """The expensive half of registration: compress + summarise.

        Produces a fully-built :class:`ManagedTable` without touching the
        catalog, so a durable subclass can make the catalog insert atomic
        with its WAL append.
        """
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} is already registered")
        start = time.perf_counter()
        params = params or self.default_params
        store = PartitionedStore.compress(
            table, partition_size or self.partition_size, self.gd_config
        )
        synopses = self._build_synopses(store, params, store.partitions)
        merged = PairwiseHist.merge(list(synopses), params=params)
        engine = PairwiseHistEngine(
            synopsis=merged,
            preprocessor=store.preprocessor,
            table_name=table.name,
            store=None,
            construction_seconds=time.perf_counter() - start,
        )
        _SYNOPSIS_BUILDS.inc(len(synopses), table=table.name)
        return ManagedTable(
            name=table.name,
            store=store,
            params=params,
            partition_synopses=synopses,
            engine=engine,
            synopsis_builds=len(synopses),
            committed_partitions=store.partitions,
            synopsis_version=next(self._version_counter),
        )

    def _publish_registration(self, managed: ManagedTable, source: Table) -> None:
        """The cheap half of registration: the catalog insert.

        The durable subclass overrides this to WAL-log the source rows
        atomically with the insert; ``source`` is the raw registered table.
        """
        if managed.name in self._tables:
            raise ValueError(f"table {managed.name!r} is already registered")
        self._tables[managed.name] = managed

    def _build_synopses(
        self,
        store: PartitionedStore,
        params: PairwiseHistParams,
        partitions,
        total_rows: int | None = None,
    ) -> list[PairwiseHist]:
        """Build synopses for the given partitions of a store, in parallel.

        ``total_rows`` overrides the row count the per-partition bin budget
        is scaled against — WAL replay passes the table size as of the
        ingest that last touched a partition, reproducing exactly the
        synopsis an uninterrupted run would have built.
        """
        inputs = [snapshot_partition_input(store, partition) for partition in partitions]
        return build_partition_synopses(
            inputs,
            params,
            columns=store.column_order,
            max_workers=self.max_workers,
            executor=self.executor,
            # Scale each partition's bin budget against the whole table even
            # when rebuilding only the tail after an append.
            total_rows=store.num_rows if total_rows is None else total_rows,
        )

    # ------------------------------------------------------------------ #
    # Streaming ingestion

    def validate_ingest(self, table_name: str, rows: Table) -> ManagedTable:
        """Check an ingest request, raising a clear error for bad input.

        * unknown table → :class:`KeyError` naming the table and the
          registered catalog,
        * ``rows`` not a :class:`~repro.data.table.Table` → :class:`TypeError`,
        * schema mismatch → :class:`ValueError` naming both column lists,

        instead of whatever attribute error would otherwise escape from
        deep inside the partitioned store.
        """
        managed = self.table(table_name)
        if not isinstance(rows, Table):
            raise TypeError(
                f"ingest into {table_name!r} needs a Table of rows, "
                f"got {type(rows).__name__}"
            )
        if rows.schema.names != managed.store.schema.names:
            raise ValueError(
                f"rows for table {table_name!r} do not match its schema: "
                f"expected columns {managed.store.schema.names}, "
                f"got {rows.schema.names}"
            )
        return managed

    def stage_ingest(self, table_name: str, rows: Table) -> StagedIngest:
        """Phase 1 of an ingest: append + rebuild, without publishing.

        The partitioned store appends (tail top-up + overflow partitions;
        the partition list is swapped atomically), then only the affected
        partitions' synopses are rebuilt and re-merged — into *fresh*
        objects that no reader can see yet.  Queries running concurrently
        keep using the table's published synopsis untouched; a concurrent
        front end runs this phase without holding the table's write lock.
        """
        start = time.perf_counter()
        managed = self.validate_ingest(table_name, rows)
        partitions_before = managed.store.partitions
        affected = managed.store.append(rows)
        synopses = None
        merged = None
        try:
            if affected:
                rebuilt = self._build_synopses(
                    managed.store,
                    managed.params,
                    [managed.store.partitions[index] for index in affected],
                )
                synopses = list(managed.partition_synopses)
                synopses.extend([None] * (managed.store.num_partitions - len(synopses)))
                for index, synopsis in zip(affected, rebuilt):
                    synopses[index] = synopsis
                merged = PairwiseHist.merge(list(synopses), params=managed.params)
        except BaseException:
            # Roll the append back so the store never outruns its synopses:
            # append() swapped in a fresh partition list and sealed
            # partitions are immutable, so restoring the old list reverts
            # it exactly and the table stays ingestable.
            managed.store.partitions = partitions_before
            raise
        return StagedIngest(
            table_name=table_name,
            appended_rows=rows.num_rows,
            affected=affected,
            synopses=synopses,
            merged=merged,
            total_partitions=managed.store.num_partitions,
            started=start,
            rows=rows,
            partitions=managed.store.partitions,
        )

    def commit_ingest(self, staged: StagedIngest) -> IngestResult:
        """Phase 2 of an ingest: publish the staged synopses (cheap swap).

        Everything expensive happened in :meth:`stage_ingest`; this only
        swaps the partition-synopsis list and the engine's merged synopsis,
        so a concurrent front end holds the table's write lock for
        microseconds, not for the rebuild.
        """
        managed = self.table(staged.table_name)
        if staged.synopses is not None:
            managed.partition_synopses = staged.synopses
            managed.committed_partitions = staged.partitions
            managed.synopsis_builds += len(staged.affected)
            _SYNOPSIS_BUILDS.inc(len(staged.affected), table=staged.table_name)
            managed.engine.refresh_synopsis(staged.merged)
            # The swap invalidates every cached result for this table:
            # caches key on (table, version), and this version is fresh.
            managed.synopsis_version = next(self._version_counter)
        return IngestResult(
            table_name=staged.table_name,
            appended_rows=staged.appended_rows,
            rebuilt_partitions=staged.affected,
            total_partitions=staged.total_partitions,
            seconds=time.perf_counter() - staged.started,
        )

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        """Append rows to a registered table, refreshing only what changed.

        Equivalent to :meth:`stage_ingest` followed immediately by
        :meth:`commit_ingest`; concurrent front ends interleave the two
        phases with the table's write lock.
        """
        return self.commit_ingest(self.stage_ingest(table_name, rows))

    # ------------------------------------------------------------------ #
    # Durability

    @classmethod
    def open(cls, path, **kwargs) -> "Database":
        """Open (or create) a durable database rooted at ``path``.

        Returns a :class:`~repro.storage.durable.DurableDatabase`: the
        latest valid snapshot is loaded, WAL segments past its checkpoint
        LSN are replayed (rebuilding only the partition synopses the
        replay touched) and every subsequent mutation is write-ahead
        logged under ``path``.  Keyword arguments are forwarded to the
        durable database's constructor.
        """
        from ..storage.durable import DurableDatabase

        return DurableDatabase.open(path, **kwargs)


#: Default bound on the per-service query-result cache (entries, not
#: bytes; results are a handful of floats each).
DEFAULT_RESULT_CACHE_SIZE = 256


class QueryService:
    """SQL front end: parse, route by table name, execute, ingest.

    Repeated queries are served from a synopsis-version-keyed result
    cache: cache keys include the owning table's
    :attr:`ManagedTable.synopsis_version`, so the commit pointer swap at
    the end of every ingest *is* the invalidation — a hit is always the
    exact object an uncached execution of the same SQL would return.
    ``result_cache_size=0`` disables the cache.

    >>> service = QueryService()
    >>> service.register_table(table)            # doctest: +SKIP
    >>> service.execute("SELECT AVG(x) FROM t WHERE y > 3")  # doctest: +SKIP
    """

    def __init__(
        self,
        database: Database | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        **database_kwargs,
    ) -> None:
        if database is not None and database_kwargs:
            raise ValueError("pass either a Database or its constructor arguments")
        self.database = database or Database(**database_kwargs)
        self.result_cache_size = result_cache_size
        self._result_cache: OrderedDict[tuple, object] = OrderedDict()
        self._result_cache_lock = threading.Lock()
        #: Per-table ``{"hits": n, "misses": n}`` counters (observability).
        self.cache_stats: dict[str, dict[str, int]] = {}
        #: Pre-bound registry cells per table — the lookup path must not
        #: pay label resolution on every query.
        self._cache_cells: dict[str, tuple] = {}
        #: Answer-quality observability hooks (``repro.audit``): both are
        #: ``None`` unless attached, and the hot path pays a single
        #: attribute check when they are.
        self.workload_log = None
        self.auditor = None

    # ------------------------------------------------------------------ #
    # Catalog passthrough

    def __contains__(self, name: str) -> bool:
        return name in self.database

    @property
    def table_names(self) -> list[str]:
        return self.database.table_names

    def table(self, name: str) -> ManagedTable:
        return self.database.table(name)

    def register_table(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        return self.database.register(table, params=params, partition_size=partition_size)

    def drop_table(self, table_name: str) -> None:
        self.database.drop(table_name)
        self._purge_cache(table_name)

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        """Stream new rows into a registered table (incremental refresh)."""
        return self.database.ingest(table_name, rows)

    # ------------------------------------------------------------------ #
    # Durability passthrough

    def checkpoint(self):
        """Write a snapshot checkpoint (durable databases only)."""
        checkpoint = getattr(self.database, "checkpoint", None)
        if checkpoint is None:
            raise ValueError(
                "this service has no durable storage attached; "
                "open the database with Database.open(path) to enable checkpoints"
            )
        return checkpoint()

    def persist(self) -> int:
        """Force the WAL to stable storage; returns the last durable LSN."""
        persist = getattr(self.database, "persist", None)
        if persist is None:
            raise ValueError(
                "this service has no durable storage attached; "
                "open the database with Database.open(path) to enable persistence"
            )
        return persist()

    # ------------------------------------------------------------------ #
    # Query execution

    def _route(self, query: Query | str) -> tuple[Query, PairwiseHistEngine]:
        if isinstance(query, str):
            query = parse_query_cached(query)
        return query, self.database.engine(query.table)

    def _execute_engine(self, query: Query, scalar: bool):
        engine = self.database.engine(query.table)
        return engine.execute_scalar(query) if scalar else engine.execute(query)

    def _cached_execute(self, query: Query | str, scalar: bool = False):
        """Execute, feeding the answer-quality hooks when attached.

        With no workload log or auditor attached (the default) this is a
        two-attribute check on top of :meth:`_serve_cached`.  The
        auditor's own re-executions bypass the hooks (``in_audit``), so
        audit traffic never pollutes the workload log or re-samples
        itself into a feedback loop.
        """
        workload = self.workload_log
        auditor = self.auditor
        if workload is None and auditor is None:
            return self._serve_cached(query, scalar)
        if auditor is not None and auditor.in_audit:
            return self._serve_cached(query, scalar)
        sql = query if isinstance(query, str) else str(query)
        started = time.perf_counter()
        result = self._serve_cached(query, scalar)
        if workload is not None:
            workload.observe(sql, time.perf_counter() - started)
        if auditor is not None:
            auditor.consider(sql)
        return result

    def _serve_cached(self, query: Query | str, scalar: bool = False):
        """Execute through the synopsis-version-keyed result cache.

        The key is ``(table, synopsis_version, scalar, sql_text)``; the
        raw SQL string keys directly (no canonicalisation — dashboards
        re-send byte-identical text).  A result written under version v
        after a concurrent commit bumped to v+1 is harmless: lookups use
        the current version, so the stale entry can never be served and
        simply ages out of the LRU.
        """
        if isinstance(query, str):
            with obs_tracing.child_span("parse"):
                sql, parsed = query, parse_query_cached(query)
        else:
            sql, parsed = str(query), query
        if self.result_cache_size <= 0:
            with obs_tracing.child_span("execute", attrs={"table": parsed.table}):
                return self._execute_engine(parsed, scalar)
        version = self.database.table(parsed.table).synopsis_version
        key = (parsed.table, version, scalar, sql)
        stats = self.cache_stats.setdefault(parsed.table, {"hits": 0, "misses": 0})
        cells = self._cache_cells.get(parsed.table)
        if cells is None:
            cells = self._cache_cells[parsed.table] = (
                _RESULT_CACHE_LOOKUPS.labels(table=parsed.table, outcome="hit"),
                _RESULT_CACHE_LOOKUPS.labels(table=parsed.table, outcome="miss"),
            )
        with obs_tracing.child_span(
            "cache_lookup", attrs={"table": parsed.table}
        ) as lookup:
            with self._result_cache_lock:
                cached = self._result_cache.get(key)
                if cached is not None:
                    self._result_cache.move_to_end(key)
                    stats["hits"] += 1
            if cached is not None:
                cells[0].inc()
                if lookup is not None:
                    lookup.set_attr("outcome", "hit")
                return cached
            if lookup is not None:
                lookup.set_attr("outcome", "miss")
        with obs_tracing.child_span("execute", attrs={"table": parsed.table}):
            result = self._execute_engine(parsed, scalar)
        with self._result_cache_lock:
            stats["misses"] += 1
            self._result_cache[key] = result
            self._result_cache.move_to_end(key)
            while len(self._result_cache) > self.result_cache_size:
                self._result_cache.popitem(last=False)
        cells[1].inc()
        return result

    def _purge_cache(self, table_name: str) -> None:
        with self._result_cache_lock:
            for key in [k for k in self._result_cache if k[0] == table_name]:
                del self._result_cache[key]
            self.cache_stats.pop(table_name, None)

    def execute(self, query: Query | str) -> list[AqpResult] | dict[str, list[AqpResult]]:
        """Execute a query against the table it names."""
        return self._cached_execute(query, scalar=False)

    def execute_scalar(self, query: Query | str) -> AqpResult:
        """Execute a non-GROUP BY query, returning the first aggregation."""
        return self._cached_execute(query, scalar=True)

    def query(self, query: Query | str) -> list[AqpResult] | dict[str, list[AqpResult]]:
        """Alias for :meth:`execute` matching the async front end's verb."""
        return self.execute(query)

    def query_scalar(self, query: Query | str) -> AqpResult:
        """Alias for :meth:`execute_scalar` matching the async front end."""
        return self.execute_scalar(query)

    # ------------------------------------------------------------------ #
    # Answer-quality observability (repro.audit)

    def explain(self, sql: str, analyze: bool = False) -> dict:
        """Structured plan for ``sql`` (see :mod:`repro.audit.explain`)."""
        from ..audit.explain import build_explain

        return build_explain(self, sql, analyze=analyze)

    def workload_snapshot(self) -> dict:
        """The workload log's template ring (empty when none is attached)."""
        if self.workload_log is None:
            return {"capacity": 0, "evicted": 0, "templates": []}
        return self.workload_log.snapshot()

    def audit_snapshot(self) -> dict:
        """The auditor's counters and recent violations (or ``enabled: False``)."""
        if self.auditor is None:
            return {"enabled": False}
        stats = self.auditor.stats()
        stats["enabled"] = True
        return stats
