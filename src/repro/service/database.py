"""Multi-table database and SQL query service over partitioned engines.

The monolithic pipeline (one table → one synopsis → one engine) becomes a
service here:

* :class:`Database` is the catalog and maintenance layer.  Registering a
  table shards it into a :class:`~repro.gd.partitioned.PartitionedStore`,
  builds one PairwiseHist per partition in parallel and merges them into
  the queryable synopsis.  :meth:`Database.ingest` streams new rows in:
  only the tail partition's store and synopsis are rebuilt, the merged
  synopsis is recomposed from the (mostly untouched) per-partition parts
  and swapped into the live engine.
* :class:`QueryService` is the SQL front end: it parses queries, routes
  them by table name to the owning engine and exposes streaming ingestion.

This is the Fig. 2 pipeline including the red incremental-update arrows,
generalised to many tables with bounded-cost appends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.builder import PartitionInput, build_partition_synopses
from ..core.engine import AqpResult, PairwiseHistEngine
from ..core.params import PairwiseHistParams
from ..core.serialization import serialize_partitioned, synopsis_size_bytes
from ..core.synopsis import PairwiseHist
from ..data.table import Table
from ..gd.greedygd import GreedyGDConfig
from ..gd.partitioned import DEFAULT_PARTITION_SIZE, PartitionedStore
from ..sql.ast import Query
from ..sql.parser import parse_query


@dataclass
class IngestResult:
    """Outcome of one streaming append: what changed and what it cost."""

    table_name: str
    appended_rows: int
    rebuilt_partitions: list[int]
    total_partitions: int
    seconds: float

    @property
    def untouched_partitions(self) -> int:
        return self.total_partitions - len(self.rebuilt_partitions)


@dataclass
class ManagedTable:
    """One registered table: partitioned store, per-partition synopses, engine."""

    name: str
    store: PartitionedStore
    params: PairwiseHistParams
    partition_synopses: list[PairwiseHist]
    engine: PairwiseHistEngine
    #: Total partition-synopsis builds over the table's lifetime — the
    #: incremental-maintenance cost metric (grows by the number of affected
    #: partitions per ingest, not by the partition count).
    synopsis_builds: int = 0

    @property
    def num_rows(self) -> int:
        return self.store.num_rows

    @property
    def num_partitions(self) -> int:
        return self.store.num_partitions

    def compressed_bytes(self) -> int:
        return self.store.compressed_bytes()

    def synopsis_bytes(self) -> int:
        """Persisted synopsis size: the framed per-partition payload.

        Partitioned synopses are stored per partition (so an append only
        rewrites the tail's blob) and merged at load time; the merged
        synopsis is a transient in-memory query accelerator whose union
        grids are not what lands on disk.
        """
        return len(self.serialized_partition_synopses())

    def merged_synopsis_bytes(self) -> int:
        """In-memory serialized size of the merged, queryable synopsis."""
        return synopsis_size_bytes(self.engine.synopsis)

    def serialized_partition_synopses(self) -> bytes:
        """Framed payload of every per-partition synopsis (PWHP format)."""
        return serialize_partitioned(self.partition_synopses)


class Database:
    """Catalog + maintenance layer: registration, ingestion, synopsis refresh."""

    def __init__(
        self,
        default_params: PairwiseHistParams | None = None,
        partition_size: int = DEFAULT_PARTITION_SIZE,
        max_workers: int | None = None,
        executor: str = "thread",
        gd_config: GreedyGDConfig | None = None,
    ) -> None:
        self.default_params = default_params or PairwiseHistParams.with_defaults(
            sample_size=100_000
        )
        self.partition_size = partition_size
        self.max_workers = max_workers
        self.executor = executor
        self.gd_config = gd_config
        self._tables: dict[str, ManagedTable] = {}

    # ------------------------------------------------------------------ #
    # Catalog

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def table(self, name: str) -> ManagedTable:
        if name not in self._tables:
            raise KeyError(
                f"no table named {name!r} is registered (have: {self.table_names})"
            )
        return self._tables[name]

    def engine(self, name: str) -> PairwiseHistEngine:
        return self.table(name).engine

    def drop(self, name: str) -> None:
        self.table(name)
        del self._tables[name]

    # ------------------------------------------------------------------ #
    # Registration

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        """Shard, compress and summarise a table, making it queryable."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} is already registered")
        start = time.perf_counter()
        params = params or self.default_params
        store = PartitionedStore.compress(
            table, partition_size or self.partition_size, self.gd_config
        )
        synopses = self._build_synopses(store, params, store.partitions)
        merged = PairwiseHist.merge(list(synopses), params=params)
        engine = PairwiseHistEngine(
            synopsis=merged,
            preprocessor=store.preprocessor,
            table_name=table.name,
            store=None,
            construction_seconds=time.perf_counter() - start,
        )
        managed = ManagedTable(
            name=table.name,
            store=store,
            params=params,
            partition_synopses=synopses,
            engine=engine,
            synopsis_builds=len(synopses),
        )
        self._tables[table.name] = managed
        return managed

    def _build_synopses(
        self,
        store: PartitionedStore,
        params: PairwiseHistParams,
        partitions,
    ) -> list[PairwiseHist]:
        """Build synopses for the given partitions of a store, in parallel."""
        inputs = []
        for partition in partitions:
            codes, nulls = partition.decoded_codes()
            initial_edges = {
                name: partition.base_values(name)
                for name in store.column_order
                if not store.preprocessor[name].is_categorical
            }
            inputs.append(
                PartitionInput(
                    codes=codes,
                    population_rows=partition.num_rows,
                    null_masks=nulls,
                    initial_edges=initial_edges,
                )
            )
        return build_partition_synopses(
            inputs,
            params,
            columns=store.column_order,
            max_workers=self.max_workers,
            executor=self.executor,
            # Scale each partition's bin budget against the whole table even
            # when rebuilding only the tail after an append.
            total_rows=store.num_rows,
        )

    # ------------------------------------------------------------------ #
    # Streaming ingestion

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        """Append rows to a registered table, refreshing only what changed.

        The partitioned store appends (tail top-up + overflow partitions),
        then only the affected partitions' synopses are rebuilt; untouched
        partitions keep their existing synopsis objects.  The merged
        synopsis is recomposed from the parts and swapped into the engine.
        """
        start = time.perf_counter()
        managed = self.table(table_name)
        affected = managed.store.append(rows)
        if affected:
            rebuilt = self._build_synopses(
                managed.store,
                managed.params,
                [managed.store.partitions[index] for index in affected],
            )
            synopses = list(managed.partition_synopses)
            synopses.extend([None] * (managed.store.num_partitions - len(synopses)))
            for index, synopsis in zip(affected, rebuilt):
                synopses[index] = synopsis
            managed.partition_synopses = synopses
            managed.synopsis_builds += len(rebuilt)
            merged = PairwiseHist.merge(list(synopses), params=managed.params)
            managed.engine.refresh_synopsis(merged)
        return IngestResult(
            table_name=table_name,
            appended_rows=rows.num_rows,
            rebuilt_partitions=affected,
            total_partitions=managed.store.num_partitions,
            seconds=time.perf_counter() - start,
        )


class QueryService:
    """SQL front end: parse, route by table name, execute, ingest.

    >>> service = QueryService()
    >>> service.register_table(table)            # doctest: +SKIP
    >>> service.execute("SELECT AVG(x) FROM t WHERE y > 3")  # doctest: +SKIP
    """

    def __init__(self, database: Database | None = None, **database_kwargs) -> None:
        if database is not None and database_kwargs:
            raise ValueError("pass either a Database or its constructor arguments")
        self.database = database or Database(**database_kwargs)

    # ------------------------------------------------------------------ #
    # Catalog passthrough

    def __contains__(self, name: str) -> bool:
        return name in self.database

    @property
    def table_names(self) -> list[str]:
        return self.database.table_names

    def table(self, name: str) -> ManagedTable:
        return self.database.table(name)

    def register_table(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        return self.database.register(table, params=params, partition_size=partition_size)

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        """Stream new rows into a registered table (incremental refresh)."""
        return self.database.ingest(table_name, rows)

    # ------------------------------------------------------------------ #
    # Query execution

    def _route(self, query: Query | str) -> tuple[Query, PairwiseHistEngine]:
        if isinstance(query, str):
            query = parse_query(query)
        return query, self.database.engine(query.table)

    def execute(self, query: Query | str) -> list[AqpResult] | dict[str, list[AqpResult]]:
        """Execute a query against the table it names."""
        query, engine = self._route(query)
        return engine.execute(query)

    def execute_scalar(self, query: Query | str) -> AqpResult:
        """Execute a non-GROUP BY query, returning the first aggregation."""
        query, engine = self._route(query)
        return engine.execute_scalar(query)
