"""Synchronous JSON-lines wire client + payload helpers.

:class:`ClusterClient` is the blocking counterpart of
:class:`~repro.service.server.AsyncQueryClient`: it speaks the exact same
newline-delimited-JSON protocol to a :class:`~repro.service.server.QueryServer`
from plain threads — which is what the cluster front end
(:mod:`repro.cluster`) needs to scatter one query to many worker shards
from a thread pool without dragging an event loop around.  It is also a
handy operational client for scripts and tests.

The module additionally owns the JSON payload encodings shared by both
ends of the protocol — tables, schemas and
:class:`~repro.core.params.PairwiseHistParams` — so the server and every
client agree on one encoding.
"""

from __future__ import annotations

import json
import math
import socket
import threading

import numpy as np

from ..core.params import PairwiseHistParams
from ..data.schema import ColumnSchema, ColumnType, TableSchema
from ..data.table import Table

#: Mirrors the server's per-line buffer limit.
DEFAULT_LINE_LIMIT = 32 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Payload encodings (shared by the async server and every client)


def table_payload(table: Table) -> dict:
    """JSON-encodable column mapping for ``register`` / ``ingest`` requests."""
    payload: dict[str, list] = {}
    for column in table.schema:
        values = table.column(column.name)
        if column.is_categorical:
            payload[column.name] = [None if v is None else str(v) for v in values]
        else:
            floats = np.asarray(values, dtype=float)
            payload[column.name] = [
                None if not math.isfinite(v) else v for v in floats.tolist()
            ]
    return payload


def schema_payload(schema: TableSchema) -> list[dict]:
    """JSON-encodable schema for ``register`` requests (skips inference)."""
    return [
        {
            "name": column.name,
            "type": column.ctype.value,
            "decimals": column.decimals,
            "nullable": bool(column.nullable),
            "categories": column.categories,
        }
        for column in schema
    ]


def schema_from_payload(payload: list[dict]) -> TableSchema:
    """Inverse of :func:`schema_payload`."""
    if not isinstance(payload, list) or not all(isinstance(c, dict) for c in payload):
        raise ValueError("schema payloads must be a list of column objects")
    columns = []
    for entry in payload:
        columns.append(
            ColumnSchema(
                name=str(entry["name"]),
                ctype=ColumnType(entry["type"]),
                decimals=int(entry.get("decimals", 0)),
                categories=entry.get("categories"),
                nullable=bool(entry.get("nullable", True)),
            )
        )
    return TableSchema(columns)


_PARAMS_FIELDS = (
    "sample_size",
    "min_points",
    "alpha",
    "min_spacing",
    "max_initial_bins",
    "max_refine_depth",
    "seed",
    "max_merged_cells",
)


def params_payload(params: PairwiseHistParams) -> dict:
    """JSON-encodable construction parameters for ``register`` requests."""
    return {field: getattr(params, field) for field in _PARAMS_FIELDS}


def params_from_payload(payload: dict) -> PairwiseHistParams:
    """Inverse of :func:`params_payload` (unknown keys are rejected)."""
    if not isinstance(payload, dict):
        raise ValueError("params payloads must be a JSON object")
    unknown = set(payload) - set(_PARAMS_FIELDS)
    if unknown:
        raise ValueError(f"unknown params fields: {sorted(unknown)}")
    return PairwiseHistParams(**payload)


# --------------------------------------------------------------------------- #
# Blocking client


class WireError(RuntimeError):
    """An ``{"ok": false}`` response frame, surfaced as an exception."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class UnsentRequestError(ConnectionError):
    """The connection failed before the request hit the socket.

    The server definitely never saw the request, so retrying it (on a
    fresh connection) cannot double-apply anything — the distinction a
    non-idempotent caller (ingest) needs.  A failure *after* the send is
    a plain :class:`ConnectionError`: the server may or may not have
    applied the request.
    """


class ClusterClient:
    """Blocking newline-delimited-JSON client for :class:`QueryServer`.

    One request is in flight per connection at a time; concurrent callers
    sharing a client serialize on an internal lock (the cluster front end
    opens one client per worker shard, so shard calls still fan out in
    parallel).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.line_limit = line_limit
        self._sock: socket.socket | None = None
        self._rfile = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle

    def connect(self) -> "ClusterClient":
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "ClusterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Protocol

    def request(self, payload: dict) -> dict:
        """Send one frame, wait for its response frame (raw, ok or not).

        Failures before the frame is written raise
        :class:`UnsentRequestError` (safe to retry verbatim); failures
        after it raise :class:`ConnectionError` (the server may have
        applied the request even though no response arrived).
        """
        if self._sock is None:
            raise UnsentRequestError("client is not connected")
        frame = json.dumps(payload).encode("utf-8") + b"\n"
        with self._lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise UnsentRequestError(f"wire send failed: {exc}") from exc
            try:
                line = self._rfile.readline(self.line_limit)
            except OSError as exc:
                raise ConnectionError(f"wire response failed: {exc}") from exc
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, payload: dict) -> dict:
        """Like :meth:`request`, raising :class:`WireError` on error frames."""
        response = self.request(payload)
        if not response.get("ok"):
            raise WireError(
                str(response.get("error_type", "Error")),
                str(response.get("error", "")),
            )
        return response["result"]

    # ------------------------------------------------------------------ #
    # Convenience ops

    def ping(self) -> bool:
        return self.call({"op": "ping"}) == "pong"

    def tables(self) -> list[str]:
        return self.call({"op": "tables"})["tables"]

    def stat(self, table: str) -> dict:
        return self.call({"op": "stat", "table": table})

    def query(self, sql: str) -> dict:
        return self.call({"op": "query", "sql": sql})

    def ingest(self, table: str, rows: Table | dict, coalesce: bool = True) -> dict:
        payload = table_payload(rows) if isinstance(rows, Table) else rows
        return self.call(
            {"op": "ingest", "table": table, "rows": payload, "coalesce": coalesce}
        )

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        request: dict = {
            "op": "register",
            "table": table.name,
            "rows": table_payload(table),
            "schema": schema_payload(table.schema),
        }
        if params is not None:
            request["params"] = params_payload(params)
        if partition_size is not None:
            request["partition_size"] = partition_size
        return self.call(request)

    def drop(self, table: str) -> dict:
        return self.call({"op": "drop", "table": table})

    def checkpoint(self) -> dict:
        return self.call({"op": "checkpoint"})

    def persist(self) -> int:
        return self.call({"op": "persist"})["last_lsn"]
