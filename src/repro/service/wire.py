"""Synchronous wire clients + payload helpers.

Two blocking clients for :class:`~repro.service.server.QueryServer`:

* :class:`ClusterClient` — the legacy newline-delimited-JSON client, one
  request in flight per connection.  Kept as the negotiated fallback and
  as a handy operational client for scripts and tests.
* :class:`PipelinedClient` — the binary-protocol client
  (:mod:`repro.service.framing`): many requests in flight per connection,
  a background reader thread matches response frames to requests by id.
  This is what the cluster front end (:mod:`repro.cluster`) multiplexes
  its scatters over.

The module additionally owns the JSON payload encodings shared by both
ends of the protocol — tables, schemas and
:class:`~repro.core.params.PairwiseHistParams` — so the server and every
client agree on one encoding.
"""

from __future__ import annotations

import json
import math
import socket
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from ..core.params import PairwiseHistParams
from ..data.schema import ColumnSchema, ColumnType, TableSchema
from ..data.table import Table
from . import framing

#: Mirrors the server's per-line buffer limit.
DEFAULT_LINE_LIMIT = 32 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Payload encodings (shared by the async server and every client)


def table_payload(table: Table) -> dict:
    """JSON-encodable column mapping for ``register`` / ``ingest`` requests."""
    payload: dict[str, list] = {}
    for column in table.schema:
        values = table.column(column.name)
        if column.is_categorical:
            payload[column.name] = [None if v is None else str(v) for v in values]
        else:
            floats = np.asarray(values, dtype=float)
            payload[column.name] = [
                None if not math.isfinite(v) else v for v in floats.tolist()
            ]
    return payload


def schema_payload(schema: TableSchema) -> list[dict]:
    """JSON-encodable schema for ``register`` requests (skips inference)."""
    return [
        {
            "name": column.name,
            "type": column.ctype.value,
            "decimals": column.decimals,
            "nullable": bool(column.nullable),
            "categories": column.categories,
        }
        for column in schema
    ]


def schema_from_payload(payload: list[dict]) -> TableSchema:
    """Inverse of :func:`schema_payload`."""
    if not isinstance(payload, list) or not all(isinstance(c, dict) for c in payload):
        raise ValueError("schema payloads must be a list of column objects")
    columns = []
    for entry in payload:
        columns.append(
            ColumnSchema(
                name=str(entry["name"]),
                ctype=ColumnType(entry["type"]),
                decimals=int(entry.get("decimals", 0)),
                categories=entry.get("categories"),
                nullable=bool(entry.get("nullable", True)),
            )
        )
    return TableSchema(columns)


_PARAMS_FIELDS = (
    "sample_size",
    "min_points",
    "alpha",
    "min_spacing",
    "max_initial_bins",
    "max_refine_depth",
    "seed",
    "max_merged_cells",
)


def params_payload(params: PairwiseHistParams) -> dict:
    """JSON-encodable construction parameters for ``register`` requests."""
    return {field: getattr(params, field) for field in _PARAMS_FIELDS}


def params_from_payload(payload: dict) -> PairwiseHistParams:
    """Inverse of :func:`params_payload` (unknown keys are rejected)."""
    if not isinstance(payload, dict):
        raise ValueError("params payloads must be a JSON object")
    unknown = set(payload) - set(_PARAMS_FIELDS)
    if unknown:
        raise ValueError(f"unknown params fields: {sorted(unknown)}")
    return PairwiseHistParams(**payload)


# --------------------------------------------------------------------------- #
# Blocking client


class WireError(RuntimeError):
    """An ``{"ok": false}`` response frame, surfaced as an exception."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class OverloadedError(WireError):
    """The server shed this request at admission (``STATUS_OVERLOADED``).

    The request was refused *before* any work started, so retrying later
    is always safe — including for ingest.
    """


class UnsentRequestError(ConnectionError):
    """The connection failed before the request hit the socket.

    The server definitely never saw the request, so retrying it (on a
    fresh connection) cannot double-apply anything — the distinction a
    non-idempotent caller (ingest) needs.  A failure *after* the send is
    a plain :class:`ConnectionError`: the server may or may not have
    applied the request.
    """


class ClusterClient:
    """Blocking newline-delimited-JSON client for :class:`QueryServer`.

    One request is in flight per connection at a time; concurrent callers
    sharing a client serialize on an internal lock (the cluster front end
    opens one client per worker shard, so shard calls still fan out in
    parallel).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.line_limit = line_limit
        self._sock: socket.socket | None = None
        self._rfile = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle

    def connect(self) -> "ClusterClient":
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "ClusterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Protocol

    def request(self, payload: dict) -> dict:
        """Send one frame, wait for its response frame (raw, ok or not).

        Failures before the frame is written raise
        :class:`UnsentRequestError` (safe to retry verbatim); failures
        after it raise :class:`ConnectionError` (the server may have
        applied the request even though no response arrived).
        """
        if self._sock is None:
            raise UnsentRequestError("client is not connected")
        frame = json.dumps(payload).encode("utf-8") + b"\n"
        with self._lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise UnsentRequestError(f"wire send failed: {exc}") from exc
            try:
                line = self._rfile.readline(self.line_limit)
            except OSError as exc:
                raise ConnectionError(f"wire response failed: {exc}") from exc
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, payload: dict) -> dict:
        """Like :meth:`request`, raising :class:`WireError` on error frames."""
        response = self.request(payload)
        if not response.get("ok"):
            raise WireError(
                str(response.get("error_type", "Error")),
                str(response.get("error", "")),
            )
        return response["result"]

    # ------------------------------------------------------------------ #
    # Convenience ops

    def ping(self) -> bool:
        return self.call({"op": "ping"}) == "pong"

    def tables(self) -> list[str]:
        return self.call({"op": "tables"})["tables"]

    def stat(self, table: str) -> dict:
        return self.call({"op": "stat", "table": table})

    def query(self, sql: str, trace: tuple[str, str] | None = None) -> dict:
        """``trace=(trace_id_hex, span_id_hex)`` tags the query for tracing."""
        request: dict = {"op": "query", "sql": sql}
        if trace is not None:
            request["trace"] = {"trace_id": trace[0], "span_id": trace[1]}
        return self.call(request)

    def ingest(self, table: str, rows: Table | dict, coalesce: bool = True) -> dict:
        payload = table_payload(rows) if isinstance(rows, Table) else rows
        return self.call(
            {"op": "ingest", "table": table, "rows": payload, "coalesce": coalesce}
        )

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        request: dict = {
            "op": "register",
            "table": table.name,
            "rows": table_payload(table),
            "schema": schema_payload(table.schema),
        }
        if params is not None:
            request["params"] = params_payload(params)
        if partition_size is not None:
            request["partition_size"] = partition_size
        return self.call(request)

    def drop(self, table: str) -> dict:
        return self.call({"op": "drop", "table": table})

    def checkpoint(self) -> dict:
        return self.call({"op": "checkpoint"})

    def persist(self) -> int:
        return self.call({"op": "persist"})["last_lsn"]

    def status(self) -> dict:
        """Replication/health snapshot (role, LSNs, lag, shed counts)."""
        return self.call({"op": "status"})

    def promote(self, epoch: int) -> dict:
        """Tell a replica to become the primary at ``epoch``."""
        return self.call({"op": "promote", "epoch": epoch})

    def follow(self, host: str, port: int) -> dict:
        """Repoint a replica's subscription at a new primary."""
        return self.call({"op": "follow", "host": host, "port": port})

    def metrics(self) -> dict:
        """Registry snapshot (fan-out merged when talking to a cluster)."""
        return self.call({"op": "metrics"})["metrics"]

    def trace(self, trace_id: str) -> list[dict]:
        """Finished spans for ``trace_id`` (fan-out merged on a cluster)."""
        return self.call({"op": "trace", "trace_id": trace_id})["spans"]

    def explain(self, sql: str, analyze: bool = False) -> dict:
        """Structured EXPLAIN plan; ``analyze=True`` also executes."""
        return self.call({"op": "explain", "sql": sql, "analyze": analyze})["explain"]

    def workload(self) -> dict:
        """Normalized-template workload log (fan-out merged on a cluster)."""
        return self.call({"op": "workload"})["workload"]

    def audit(self) -> dict:
        """Accuracy-auditor stats (fan-out merged on a cluster)."""
        return self.call({"op": "audit"})["audit"]


# --------------------------------------------------------------------------- #
# Pipelined binary client


class PipelinedClient:
    """Blocking binary-protocol client with true pipelining.

    ``submit_*`` methods write one frame and return a
    :class:`~concurrent.futures.Future` immediately — many requests ride
    one connection concurrently, and a background reader thread resolves
    each future as its response frame arrives (responses may come back in
    any order; they are matched by request id).  The synchronous
    conveniences (``query`` / ``ingest`` / ``call`` / ...) mirror
    :class:`ClusterClient` and simply wait on their own future.

    Error semantics match :class:`ClusterClient`: a failure *before* the
    frame hits the socket raises :class:`UnsentRequestError` (safe to
    retry verbatim); a connection failure afterwards fails the future
    with a plain :class:`ConnectionError` (the server may have applied
    the request).  Error frames raise :class:`WireError`; admission-shed
    frames raise :class:`OverloadedError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        line_limit: int = DEFAULT_LINE_LIMIT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.line_limit = line_limit
        self._sock: socket.socket | None = None
        self._rfile = None
        self._reader: threading.Thread | None = None
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, tuple[Future, int]] = {}
        self._next_id = 0
        self._closed = False
        #: Set (under ``_pending_lock``) when the reader thread dies; any
        #: later submit must refuse instead of writing into a socket whose
        #: responses nobody will ever read.
        self._dead_exc: Exception | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle

    def connect(self) -> "PipelinedClient":
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The connect timeout must not apply to the reader's blocking
        # read — an idle connection is not an error.  Per-request
        # timeouts are enforced on the futures instead.
        sock.settimeout(None)
        sock.sendall(framing.MAGIC)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._closed = False
        self._dead_exc = None
        self._reader = threading.Thread(
            target=self._read_loop, name="aqp-pipeline-reader", daemon=True
        )
        self._reader.start()
        return self

    def close(self) -> None:
        self._closed = True
        sock, rfile, reader = self._sock, self._rfile, self._reader
        self._sock = self._rfile = self._reader = None
        if sock is not None:
            # Unblock the reader thread *before* closing the buffered
            # file: rfile.close() needs the buffer lock the reader holds
            # while blocked in readinto(), so closing it first deadlocks.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=1.0)
        for closable in (rfile, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._fail_pending(ConnectionError("client closed"))

    @property
    def connected(self) -> bool:
        return self._sock is not None and not self._closed

    def __enter__(self) -> "PipelinedClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Frame plumbing

    def _submit(
        self,
        op: int,
        payload: bytes,
        trace: tuple[bytes, bytes] | None = None,
    ) -> Future:
        """Write one request frame; its future resolves with the response.

        ``trace=(trace_id16, span_id8)`` appends the trace trailer so the
        server joins this request to an existing trace.
        """
        future: Future = Future()
        with self._send_lock:
            sock = self._sock
            if sock is None or self._closed:
                raise UnsentRequestError("client is not connected")
            self._next_id += 1
            request_id = self._next_id
            # Register before sending so a same-thread-fast response can
            # never race past its pending entry.  The dead-reader check
            # shares the lock with _fail_pending, so either this entry is
            # registered before the reader's drain (and gets failed by
            # it), or the death is observed here — a future can never be
            # orphaned between a dead reader and a successful send.
            with self._pending_lock:
                if self._dead_exc is not None:
                    raise UnsentRequestError(
                        f"wire reader died: {self._dead_exc}"
                    ) from self._dead_exc
                self._pending[request_id] = (future, op)
            try:
                sock.sendall(framing.encode_frame(op, request_id, payload, trace))
            except OSError as exc:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                raise UnsentRequestError(f"wire send failed: {exc}") from exc
        return future

    def _read_loop(self) -> None:
        rfile = self._rfile
        try:
            while True:
                header = rfile.read(framing.HEADER_SIZE)
                if len(header) < framing.HEADER_SIZE:
                    raise ConnectionError("server closed the connection")
                status, request_id, payload_len = framing.decode_header(header)
                if payload_len > self.line_limit:
                    raise ConnectionError(
                        f"response frame of {payload_len} bytes exceeds the "
                        f"{self.line_limit} byte limit"
                    )
                payload = rfile.read(payload_len) if payload_len else b""
                if len(payload) < payload_len:
                    raise ConnectionError("server closed the connection mid-frame")
                with self._pending_lock:
                    entry = self._pending.pop(request_id, None)
                if entry is None:
                    continue  # e.g. a duplicate/late frame; nobody waits on it
                future, op = entry
                if status == framing.STATUS_OK:
                    try:
                        result = self._decode_ok(op, payload)
                    except Exception as exc:
                        future.set_exception(exc)
                    else:
                        future.set_result(result)
                else:
                    error_type, message = framing.decode_error(payload)
                    cls = (
                        OverloadedError
                        if status == framing.STATUS_OVERLOADED
                        else WireError
                    )
                    future.set_exception(cls(error_type, message))
        except Exception as exc:
            if not isinstance(exc, ConnectionError):
                exc = ConnectionError(f"wire reader failed: {exc}")
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        with self._pending_lock:
            self._dead_exc = exc
            pending = list(self._pending.values())
            self._pending.clear()
        for future, _ in pending:
            if not future.done():
                future.set_exception(exc)

    @staticmethod
    def _decode_ok(op: int, payload: bytes):
        if op == framing.OP_PING:
            return True
        if op == framing.OP_QUERY:
            return framing.decode_result(payload)
        if op == framing.OP_QUERY_BATCH:
            return framing.decode_batch_response(payload)
        return framing.decode_json(payload)  # OP_INGEST / OP_JSON

    def _result(self, future: Future):
        try:
            return future.result(timeout=self.timeout)
        except FutureTimeoutError:
            # The request was sent; whether the server applied it is
            # unknown — the ambiguous-outcome error, like a mid-flight
            # connection loss.
            raise ConnectionError(
                f"no response within {self.timeout}s"
            ) from None

    # ------------------------------------------------------------------ #
    # Pipelined submissions

    def submit_ping(self) -> Future:
        return self._submit(framing.OP_PING, b"")

    def submit_query(
        self, sql: str, trace: tuple[bytes, bytes] | None = None
    ) -> Future:
        """Future of a decoded result payload (same shape as the JSON path)."""
        return self._submit(framing.OP_QUERY, framing.encode_query(sql), trace)

    def submit_query_batch(self, sqls: list[str]) -> Future:
        """Future of per-query outcome dicts (``ok``/``result``/``error``)."""
        return self._submit(framing.OP_QUERY_BATCH, framing.encode_query_batch(sqls))

    def submit_ingest(self, table: str, rows: Table, coalesce: bool = True) -> Future:
        """Binary ingest: rows travel as the codec table format, not JSON."""
        return self._submit(
            framing.OP_INGEST, framing.encode_ingest(table, rows, coalesce)
        )

    def submit_call(self, payload: dict) -> Future:
        """Cold-path JSON op over a binary frame (register, drop, stat, ...)."""
        return self._submit(framing.OP_JSON, framing.encode_json(payload))

    # ------------------------------------------------------------------ #
    # Synchronous conveniences (mirror ClusterClient)

    def call(self, payload: dict) -> dict:
        return self._result(self.submit_call(payload))

    def ping(self) -> bool:
        return self._result(self.submit_ping()) is True

    def tables(self) -> list[str]:
        return self.call({"op": "tables"})["tables"]

    def stat(self, table: str) -> dict:
        return self.call({"op": "stat", "table": table})

    def query(self, sql: str, trace: tuple[bytes, bytes] | None = None) -> dict:
        from ..audit.explain import split_explain

        # The binary result block cannot carry a structured plan, so the
        # SQL-prefix form rides the OP_JSON cold path instead.
        if split_explain(sql) is not None:
            return self.call({"op": "query", "sql": sql})
        return self._result(self.submit_query(sql, trace))

    def query_batch(self, sqls: list[str]) -> list[dict]:
        return self._result(self.submit_query_batch(sqls))

    def ingest(self, table: str, rows: Table | dict, coalesce: bool = True) -> dict:
        if isinstance(rows, Table):
            return self._result(self.submit_ingest(table, rows, coalesce))
        return self.call(
            {"op": "ingest", "table": table, "rows": rows, "coalesce": coalesce}
        )

    def register(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> dict:
        request: dict = {
            "op": "register",
            "table": table.name,
            "rows": table_payload(table),
            "schema": schema_payload(table.schema),
        }
        if params is not None:
            request["params"] = params_payload(params)
        if partition_size is not None:
            request["partition_size"] = partition_size
        return self.call(request)

    def drop(self, table: str) -> dict:
        return self.call({"op": "drop", "table": table})

    def checkpoint(self) -> dict:
        return self.call({"op": "checkpoint"})

    def persist(self) -> int:
        return self.call({"op": "persist"})["last_lsn"]

    def status(self) -> dict:
        """Replication/health snapshot (role, LSNs, lag, shed counts)."""
        return self.call({"op": "status"})

    def promote(self, epoch: int) -> dict:
        """Tell a replica to become the primary at ``epoch``."""
        return self.call({"op": "promote", "epoch": epoch})

    def follow(self, host: str, port: int) -> dict:
        """Repoint a replica's subscription at a new primary."""
        return self.call({"op": "follow", "host": host, "port": port})

    def metrics(self) -> dict:
        """Registry snapshot (fan-out merged when talking to a cluster)."""
        return self.call({"op": "metrics"})["metrics"]

    def trace(self, trace_id: str) -> list[dict]:
        """Finished spans for ``trace_id`` (fan-out merged on a cluster)."""
        return self.call({"op": "trace", "trace_id": trace_id})["spans"]

    def explain(self, sql: str, analyze: bool = False) -> dict:
        """Structured EXPLAIN plan; ``analyze=True`` also executes."""
        return self.call({"op": "explain", "sql": sql, "analyze": analyze})["explain"]

    def workload(self) -> dict:
        """Normalized-template workload log (fan-out merged on a cluster)."""
        return self.call({"op": "workload"})["workload"]

    def audit(self) -> dict:
        """Accuracy-auditor stats (fan-out merged on a cluster)."""
        return self.call({"op": "audit"})["audit"]
