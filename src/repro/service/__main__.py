"""``python -m repro.service`` — run the query server as a process.

Kept separate from :mod:`repro.service.server` so the module executed by
``-m`` is not also the module the package imports (which would load it
twice under two names).
"""

from .server import main

if __name__ == "__main__":
    main()
