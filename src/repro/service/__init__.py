"""Multi-table query service over partitioned, incrementally-updatable engines.

:class:`Database` owns registration, partitioned compression, parallel
synopsis construction and streaming ingestion; :class:`QueryService` is the
SQL front end routing queries by table name.  :class:`QueryServiceSystem`
plugs a service table into the benchmark harness.
"""

from .database import Database, IngestResult, ManagedTable, QueryService
from .system import QueryServiceSystem

__all__ = [
    "Database",
    "IngestResult",
    "ManagedTable",
    "QueryService",
    "QueryServiceSystem",
]
