"""Multi-table query service over partitioned, incrementally-updatable engines.

:class:`Database` owns registration, partitioned compression, parallel
synopsis construction and streaming ingestion; :class:`QueryService` is the
SQL front end routing queries by table name.  For parallel clients,
:class:`ConcurrentQueryService` adds per-table reader-writer locks with
copy-on-write ingestion, :class:`AsyncQueryService` exposes the same API
as coroutines (with a coalescing ingest queue), and :class:`QueryServer`
serves it over TCP speaking two negotiated dialects: the binary pipelined
protocol (:mod:`repro.service.framing`, spoken by
:class:`PipelinedClient`) and the legacy newline-delimited-JSON fallback
(:class:`ClusterClient`).  :class:`QueryServiceSystem` plugs a service
table into the benchmark harness.
"""

from .concurrency import (
    ConcurrentQueryService,
    ReadWriteLock,
    SerializedQueryService,
)
from .database import (
    Database,
    IngestResult,
    ManagedTable,
    QueryService,
    StagedIngest,
)
from .server import AsyncQueryClient, AsyncQueryService, QueryServer
from .system import QueryServiceSystem
from .wire import ClusterClient, OverloadedError, PipelinedClient, WireError

__all__ = [
    "AsyncQueryClient",
    "AsyncQueryService",
    "ClusterClient",
    "OverloadedError",
    "PipelinedClient",
    "WireError",
    "ConcurrentQueryService",
    "Database",
    "IngestResult",
    "ManagedTable",
    "QueryServer",
    "QueryService",
    "QueryServiceSystem",
    "ReadWriteLock",
    "SerializedQueryService",
    "StagedIngest",
]
