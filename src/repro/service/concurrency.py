"""Thread-safe query service: per-table reader-writer locks + copy-on-write.

The plain :class:`~repro.service.database.QueryService` is single-threaded:
a query running concurrently with an ``ingest()`` can observe a
half-updated engine (new synopsis, stale evaluator cache, or vice versa).
This module makes the service safe — and fast — under parallel clients:

* :class:`ReadWriteLock` is a writer-preference reader-writer lock: any
  number of queries share a table, ingest/refresh is exclusive, and a
  waiting writer blocks *new* readers so a steady query stream cannot
  starve ingestion.
* :class:`ConcurrentQueryService` wraps every table in one such lock and
  splits ingestion into the staged (copy-on-write) protocol of
  :meth:`~repro.service.database.Database.stage_ingest`: the expensive
  append + synopsis rebuild runs *off* the lock while queries proceed,
  and only the final pointer swap takes the write lock.  Read latency
  stays flat during ingest.
* :class:`SerializedQueryService` is the strawman baseline — one global
  mutex around everything — used by the concurrency benchmark and tests
  to quantify what the per-table locks buy.

The asyncio front end in :mod:`repro.service.server` dispatches onto a
:class:`ConcurrentQueryService` from an executor, which is why the locking
discipline lives here, free of any event-loop dependency.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..core.params import PairwiseHistParams
from ..data.table import Table
from ..sql.ast import Query
from ..sql.parser import parse_query_cached
from .database import Database, IngestResult, ManagedTable, QueryService


class ReadWriteLock:
    """A reader-writer lock with writer preference.

    Many readers may hold the lock at once; a writer holds it exclusively.
    While any writer is *waiting*, new readers block, so a continuous
    stream of readers cannot starve ingestion (lock fairness under writer
    pressure).  Re-entrant acquisition is not supported.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ #
    # Reader side

    def acquire_read(self, timeout: float | None = None) -> None:
        with self._cond:
            if not self._cond.wait_for(
                lambda: not self._writer_active and self._writers_waiting == 0,
                timeout=timeout,
            ):
                raise TimeoutError("timed out waiting for read lock")
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Writer side

    def acquire_write(self, timeout: float | None = None) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                acquired = self._cond.wait_for(
                    lambda: not self._writer_active and self._active_readers == 0,
                    timeout=timeout,
                )
            finally:
                self._writers_waiting -= 1
            if not acquired:
                # Readers that queued behind this writer are eligible again
                # now that it is gone; wake them or they stay parked until
                # the current readers fully drain.
                self._cond.notify_all()
                raise TimeoutError("timed out waiting for write lock")
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Context managers / introspection

    @contextmanager
    def read_locked(self, timeout: float | None = None):
        self.acquire_read(timeout=timeout)
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self, timeout: float | None = None):
        self.acquire_write(timeout=timeout)
        try:
            yield self
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._active_readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active


class ConcurrentQueryService(QueryService):
    """A :class:`QueryService` that is safe under parallel query + ingest.

    Locking discipline (per table):

    * ``query`` / ``execute`` / ``execute_scalar`` hold the table's *read*
      lock for the whole engine call, so an answer always reflects exactly
      one published synopsis — never a torn mix of pre- and post-ingest
      state.
    * ``ingest`` serializes writers through a per-table mutex, runs the
      append + synopsis rebuild **off** the reader-writer lock
      (:meth:`Database.stage_ingest` — queries keep flowing against the
      old synopsis), then takes the *write* lock only for the pointer swap
      (:meth:`Database.commit_ingest`).
    * ``register_table`` / ``drop_table`` take the write lock so a table
      never appears or vanishes mid-query.
    * ``checkpoint`` (durable databases) takes *no* table lock at all: the
      durable database serializes its capture against every commit /
      register / drop on its own internal mutex and captures copy-on-write
      references only, so queries are never blocked by a snapshot and
      writers pause for microseconds.  Because the commit phase runs under
      the table's write lock *and then* that mutex, the lock ordering is
      ``write lock -> durable mutex`` everywhere — a checkpoint can never
      deadlock with an ingest.

    Catalog-level state (the lock registry itself) is guarded by a plain
    mutex held only for dictionary lookups.
    """

    def __init__(self, database: Database | None = None, **database_kwargs) -> None:
        super().__init__(database, **database_kwargs)
        self._registry_mutex = threading.Lock()
        self._table_locks: dict[str, ReadWriteLock] = {}
        self._ingest_mutexes: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------ #
    # Lock registry

    def lock_for(self, table_name: str) -> ReadWriteLock:
        """The reader-writer lock guarding one *registered* table.

        Entries are created only while the table is in the catalog (the
        membership check happens under the registry mutex, so a racing
        ``drop_table`` cannot resurrect a just-retired entry): arbitrary
        names arriving over the wire raise :class:`KeyError` instead of
        growing the registry without bound.
        """
        with self._registry_mutex:
            lock = self._table_locks.get(table_name)
            if lock is None:
                self.database.table(table_name)  # KeyError naming the catalog
                lock = self._create_locks(table_name)
            return lock

    def _ingest_mutex(self, table_name: str) -> threading.Lock:
        with self._registry_mutex:
            mutex = self._ingest_mutexes.get(table_name)
            if mutex is None:
                self.database.table(table_name)  # KeyError naming the catalog
                self._create_locks(table_name)
                mutex = self._ingest_mutexes[table_name]
            return mutex

    def _create_locks(self, table_name: str) -> ReadWriteLock:
        """Insert a lock pair for a table; caller holds the registry mutex."""
        self._table_locks[table_name] = ReadWriteLock()
        self._ingest_mutexes[table_name] = threading.Lock()
        return self._table_locks[table_name]

    def _lock_is_current(self, table_name: str, lock: ReadWriteLock) -> bool:
        """Whether a lock acquired moments ago still guards the table.

        Between ``lock_for`` and acquiring the returned lock, a
        ``drop_table`` (+ re-register) can retire the pair; acting under
        the stale object would leave the caller unsynchronized with the
        new table's writers.  Callers loop until the acquired lock is the
        registered one.
        """
        with self._registry_mutex:
            return self._table_locks.get(table_name) is lock

    # ------------------------------------------------------------------ #
    # Queries (shared / read side)

    def execute(self, query: Query | str):
        parsed = parse_query_cached(query) if isinstance(query, str) else query
        while True:
            lock = self.lock_for(parsed.table)
            with lock.read_locked():
                if not self._lock_is_current(parsed.table, lock):
                    continue  # dropped/re-registered underneath us; retry
                # Cache lookup runs under the read lock, so the synopsis
                # version it keys on cannot be swapped mid-execution.
                return self._cached_execute(query, scalar=False)

    def execute_scalar(self, query: Query | str):
        parsed = parse_query_cached(query) if isinstance(query, str) else query
        while True:
            lock = self.lock_for(parsed.table)
            with lock.read_locked():
                if not self._lock_is_current(parsed.table, lock):
                    continue
                return self._cached_execute(query, scalar=True)

    # ------------------------------------------------------------------ #
    # Maintenance (exclusive / write side)

    def register_table(
        self,
        table: Table,
        params: PairwiseHistParams | None = None,
        partition_size: int | None = None,
    ) -> ManagedTable:
        # The one place locks are created for a not-yet-registered name.
        # Both objects are captured under the registry mutex (a racing drop
        # of the same name may pop the dict entries while we wait on the
        # mutex, so they must not be re-read from the dicts).
        with self._registry_mutex:
            if table.name not in self._table_locks:
                self._create_locks(table.name)
            mutex = self._ingest_mutexes[table.name]
            lock = self._table_locks[table.name]
        try:
            with mutex:
                with lock.write_locked():
                    return self.database.register(
                        table, params=params, partition_size=partition_size
                    )
        except BaseException:
            # A failed registration must not leave a lock pair behind for a
            # name that never made it into the catalog (a duplicate-name
            # failure keeps the live table's locks: the name *is* registered).
            with self._registry_mutex:
                if table.name not in self.database:
                    self._table_locks.pop(table.name, None)
                    self._ingest_mutexes.pop(table.name, None)
            raise

    def _acquire_current_ingest_mutex(self, table_name: str) -> threading.Lock:
        """Acquire the table's ingest mutex, retrying over drop races.

        Once the *currently registered* mutex is held, no ``drop_table``
        can retire the pair (it needs this mutex first), so the whole
        lock pair is stable for the duration.
        """
        while True:
            mutex = self._ingest_mutex(table_name)
            mutex.acquire()
            with self._registry_mutex:
                if self._ingest_mutexes.get(table_name) is mutex:
                    return mutex
            mutex.release()  # stale pair; look the current one up again

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        """Copy-on-write ingest: build off-lock, swap under the write lock."""
        mutex = self._acquire_current_ingest_mutex(table_name)
        try:
            staged = self.database.stage_ingest(table_name, rows)
            with self.lock_for(table_name).write_locked():
                return self.database.commit_ingest(staged)
        finally:
            mutex.release()

    def drop_table(self, table_name: str) -> None:
        mutex = self._acquire_current_ingest_mutex(table_name)
        try:
            with self.lock_for(table_name).write_locked():
                self.database.drop(table_name)
            # Retire the dropped table's locks; a later re-registration
            # under the same name starts with a fresh pair.  Queries racing
            # this pop cannot re-insert the entry (lock_for only creates
            # while the name is in the catalog) and they revalidate their
            # lock after acquiring it, so a stale pair is never acted on.
            with self._registry_mutex:
                self._table_locks.pop(table_name, None)
                self._ingest_mutexes.pop(table_name, None)
        finally:
            mutex.release()


class SerializedQueryService(QueryService):
    """Baseline: every operation — query *and* ingest — behind one mutex.

    This is what "no concurrency support" costs: while an ingest rebuilds
    the tail synopsis, every query on every table waits.  The concurrency
    benchmark reports throughput against this to quantify the per-table
    reader-writer locks and the copy-on-write refresh.
    """

    def __init__(self, database: Database | None = None, **database_kwargs) -> None:
        super().__init__(database, **database_kwargs)
        self._mutex = threading.Lock()

    def execute(self, query: Query | str):
        with self._mutex:
            return super().execute(query)

    def execute_scalar(self, query: Query | str):
        with self._mutex:
            return super().execute_scalar(query)

    def register_table(self, table, params=None, partition_size=None):
        with self._mutex:
            return super().register_table(
                table, params=params, partition_size=partition_size
            )

    def ingest(self, table_name: str, rows: Table) -> IngestResult:
        with self._mutex:
            return super().ingest(table_name, rows)
