"""Run a workload against an AQP system and collect per-query measurements.

Systems under test include the classic single-table adapters and whole
:class:`~repro.service.database.QueryService` tables (via
:meth:`WorkloadRunner.for_service`, which reconstructs the ground-truth
rows losslessly from the service's partitioned store).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines.base import AqpSystem, UnsupportedQueryError
from ..data.table import Table
from ..exactdb.executor import ExactQueryEngine
from ..sql.ast import Query
from .metrics import QueryRecord, WorkloadSummary


@dataclass
class WorkloadRunner:
    """Executes queries exactly (ground truth) and approximately (system under test)."""

    table: Table

    def __post_init__(self) -> None:
        self._exact = ExactQueryEngine(self.table)

    @classmethod
    def for_service(cls, service, table_name: str) -> "WorkloadRunner":
        """Build a runner for one table of a query service.

        Ground truth comes from the partitioned store's lossless
        reconstruction, so the runner stays in sync with whatever the
        service has ingested so far (call again after further ingests).
        """
        return cls(table=service.table(table_name).store.reconstruct_rows())

    # ------------------------------------------------------------------ #

    def ground_truth(self, query: Query) -> float:
        """Exact result of the query's first aggregation."""
        return self._exact.execute_scalar(query)

    def run(self, system: AqpSystem, queries: list[Query]) -> WorkloadSummary:
        """Run every query against ``system`` and summarise the outcome.

        Queries the system cannot answer are recorded with
        ``supported=False`` so the harness can report per-system supported
        query counts the way the paper does for DeepDB and DBEst++.
        """
        summary = WorkloadSummary()
        for query in queries:
            truth = self.ground_truth(query)
            aggregation = query.aggregation.func.value
            sql = str(query)
            try:
                start = time.perf_counter()
                result = system.estimate(query)
                latency = time.perf_counter() - start
            except UnsupportedQueryError:
                summary.add(
                    QueryRecord(
                        sql=sql,
                        aggregation=aggregation,
                        truth=truth,
                        estimate=float("nan"),
                        supported=False,
                    )
                )
                continue
            summary.add(
                QueryRecord(
                    sql=sql,
                    aggregation=aggregation,
                    truth=truth,
                    estimate=result.value,
                    lower=result.lower,
                    upper=result.upper,
                    latency_seconds=latency,
                )
            )
        return summary

    def run_many(
        self, systems: list[AqpSystem], queries: list[Query]
    ) -> dict[str, WorkloadSummary]:
        """Run the same workload against several systems."""
        return {system.name: self.run(system, queries) for system in systems}
