"""Run a workload against an AQP system and collect per-query measurements.

Systems under test include the classic single-table adapters and whole
:class:`~repro.service.database.QueryService` tables (via
:meth:`WorkloadRunner.for_service`, which reconstructs the ground-truth
rows losslessly from the service's partitioned store).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..baselines.base import AqpSystem, UnsupportedQueryError
from ..data.table import Table
from ..exactdb.executor import ExactQueryEngine
from ..sql.ast import Query
from .metrics import QueryRecord, WorkloadSummary


@dataclass
class WorkloadRunner:
    """Executes queries exactly (ground truth) and approximately (system under test)."""

    table: Table

    def __post_init__(self) -> None:
        self._exact = ExactQueryEngine(self.table)

    @classmethod
    def for_service(cls, service, table_name: str) -> "WorkloadRunner":
        """Build a runner for one table of a query service.

        Ground truth comes from the partitioned store's lossless
        reconstruction, so the runner stays in sync with whatever the
        service has ingested so far (call again after further ingests).
        """
        return cls(table=service.table(table_name).store.reconstruct_rows())

    # ------------------------------------------------------------------ #

    def ground_truth(self, query: Query) -> float:
        """Exact result of the query's first aggregation."""
        return self._exact.execute_scalar(query)

    def run(self, system: AqpSystem, queries: list[Query]) -> WorkloadSummary:
        """Run every query against ``system`` and summarise the outcome.

        Queries the system cannot answer are recorded with
        ``supported=False`` so the harness can report per-system supported
        query counts the way the paper does for DeepDB and DBEst++.
        """
        summary = WorkloadSummary()
        for query in queries:
            summary.add(_measure_query(system, query, self.ground_truth(query)))
        return summary

    def run_many(
        self, systems: list[AqpSystem], queries: list[Query]
    ) -> dict[str, WorkloadSummary]:
        """Run the same workload against several systems."""
        return {system.name: self.run(system, queries) for system in systems}

    def run_concurrent(
        self,
        system: AqpSystem,
        queries: list[Query],
        num_clients: int = 4,
        think_seconds: float = 0.0,
    ) -> "ConcurrentRunResult":
        """Run the workload from several concurrent clients (threads).

        The query list is split round-robin across ``num_clients`` threads
        hitting ``system`` simultaneously — dashboard-style traffic.
        Ground truth is computed up front on the calling thread, so only
        the system under test sees concurrency.  ``think_seconds`` adds a
        per-query client-side pause (render/network time) between requests.

        The summary preserves the original query order; any unexpected
        exception from a client is re-raised after all threads join.
        """
        if num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        truths = [self.ground_truth(query) for query in queries]
        records: list[QueryRecord | None] = [None] * len(queries)
        failures: list[BaseException] = []

        def client(worker: int) -> None:
            try:
                for index in range(worker, len(queries), num_clients):
                    if think_seconds > 0:
                        time.sleep(think_seconds)
                    records[index] = _measure_query(
                        system, queries[index], truths[index]
                    )
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(worker,), daemon=True)
            for worker in range(num_clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - start
        if failures:
            raise failures[0]
        summary = WorkloadSummary()
        for record in records:
            summary.add(record)
        return ConcurrentRunResult(
            summary=summary, wall_seconds=wall_seconds, num_clients=num_clients
        )


def _measure_query(system: AqpSystem, query: Query, truth: float) -> QueryRecord:
    """One timed estimate, recorded the same way :meth:`WorkloadRunner.run` does."""
    aggregation = query.aggregation.func.value
    sql = str(query)
    try:
        start = time.perf_counter()
        result = system.estimate(query)
        latency = time.perf_counter() - start
    except UnsupportedQueryError:
        return QueryRecord(
            sql=sql,
            aggregation=aggregation,
            truth=truth,
            estimate=float("nan"),
            supported=False,
        )
    return QueryRecord(
        sql=sql,
        aggregation=aggregation,
        truth=truth,
        estimate=result.value,
        lower=result.lower,
        upper=result.upper,
        latency_seconds=latency,
    )


@dataclass
class ConcurrentRunResult:
    """Outcome of one multi-client run: accuracy summary plus throughput."""

    summary: WorkloadSummary
    wall_seconds: float
    num_clients: int

    @property
    def queries_per_second(self) -> float:
        supported = len(self.summary.supported_records)
        return supported / self.wall_seconds if self.wall_seconds > 0 else 0.0
