"""Error, bounds and latency metrics used throughout the evaluation (§6).

The paper reports: median relative error, error CDFs, the fraction of
queries whose bounds contain the true result ("bounds correct rate"), the
median bound width as a percentage of the exact result, median query
latency and synopsis construction time.  Every one of those reductions
lives here so the benchmark harness and tests share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|`` with a zero-truth guard."""
    if not np.isfinite(estimate) or not np.isfinite(truth):
        return float("inf")
    denominator = abs(truth) if truth != 0 else 1.0
    return abs(estimate - truth) / denominator


def bound_width_percent(lower: float, upper: float, truth: float) -> float:
    """Bound width as a percentage of the exact result (Table 6 metric)."""
    if not (np.isfinite(lower) and np.isfinite(upper) and np.isfinite(truth)):
        return float("inf")
    denominator = abs(truth) if truth != 0 else 1.0
    return 100.0 * (upper - lower) / denominator


def bounds_correct(lower: float, upper: float, truth: float) -> bool:
    """Whether the bounds contain the true result."""
    if not (np.isfinite(lower) and np.isfinite(upper) and np.isfinite(truth)):
        return False
    return lower <= truth <= upper


@dataclass
class QueryRecord:
    """Per-query measurement: what was asked, what came back, how long it took."""

    sql: str
    aggregation: str
    truth: float
    estimate: float
    lower: float = float("nan")
    upper: float = float("nan")
    latency_seconds: float = 0.0
    supported: bool = True

    @property
    def relative_error(self) -> float:
        return relative_error(self.estimate, self.truth)

    @property
    def bounds_correct(self) -> bool:
        return bounds_correct(self.lower, self.upper, self.truth)

    @property
    def bound_width_percent(self) -> float:
        return bound_width_percent(self.lower, self.upper, self.truth)


@dataclass
class WorkloadSummary:
    """Aggregate statistics over a set of :class:`QueryRecord`."""

    records: list[QueryRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def add(self, record: QueryRecord) -> None:
        self.records.append(record)

    @property
    def supported_records(self) -> list[QueryRecord]:
        return [r for r in self.records if r.supported]

    def errors(self) -> np.ndarray:
        return np.array([r.relative_error for r in self.supported_records])

    def median_error_percent(self) -> float:
        errors = self.errors()
        finite = errors[np.isfinite(errors)]
        return float(np.median(finite) * 100.0) if finite.size else float("nan")

    def median_latency_ms(self) -> float:
        latencies = np.array([r.latency_seconds for r in self.supported_records])
        return float(np.median(latencies) * 1000.0) if latencies.size else float("nan")

    def bounds_correct_rate_percent(self) -> float:
        records = [r for r in self.supported_records if np.isfinite(r.lower)]
        if not records:
            return float("nan")
        return 100.0 * float(np.mean([r.bounds_correct for r in records]))

    def median_bound_width_percent(self) -> float:
        widths = np.array(
            [r.bound_width_percent for r in self.supported_records if np.isfinite(r.lower)]
        )
        finite = widths[np.isfinite(widths)]
        return float(np.median(finite)) if finite.size else float("nan")

    def error_percentiles(self, percentiles: np.ndarray | list[float]) -> np.ndarray:
        """Error values at the requested percentiles (for the Fig. 10 CDFs)."""
        errors = self.errors()
        finite = np.sort(errors[np.isfinite(errors)])
        if finite.size == 0:
            return np.full(len(list(percentiles)), float("nan"))
        return np.percentile(finite, percentiles)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of queries with relative error below ``threshold`` (e.g. 0.10)."""
        errors = self.errors()
        finite = errors[np.isfinite(errors)]
        return float(np.mean(finite < threshold)) if finite.size else float("nan")

    def by_aggregation(self) -> dict[str, "WorkloadSummary"]:
        """Split the summary per aggregation function (Table 5 rows)."""
        split: dict[str, WorkloadSummary] = {}
        for record in self.records:
            split.setdefault(record.aggregation, WorkloadSummary()).add(record)
        return split
