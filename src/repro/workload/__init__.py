"""Workload generation, execution and metrics."""

from .generator import QueryGenerator, WorkloadSpec
from .metrics import (
    QueryRecord,
    WorkloadSummary,
    bound_width_percent,
    bounds_correct,
    relative_error,
)
from .runner import WorkloadRunner

__all__ = [
    "QueryGenerator",
    "WorkloadSpec",
    "QueryRecord",
    "WorkloadSummary",
    "relative_error",
    "bounds_correct",
    "bound_width_percent",
    "WorkloadRunner",
]
