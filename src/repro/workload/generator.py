"""Random workload generation mirroring the paper's evaluation setup (§6).

Two workload families are used by the paper:

* *initial experiments* — 100 single-predicate queries per dataset with
  aggregation functions COUNT, SUM and AVG and minimum selectivity 1e-5,
* *scaled-up experiments* — several hundred queries with all seven
  aggregation functions, 1–5 predicate conditions (mixing AND and OR) and
  minimum selectivity 1e-6.

:class:`QueryGenerator` reproduces both: predicates draw literals from the
empirical quantiles of the data so selectivities are non-trivial, and every
generated query is validated against the exact engine to enforce the
minimum-selectivity constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.table import Table
from ..sql.ast import (
    AggregateFunction,
    Aggregation,
    ComparisonOp,
    Condition,
    LogicalOp,
    Predicate,
    PredicateNode,
    Query,
)
from ..sql.predicate import predicate_mask

_RANGE_OPS = [ComparisonOp.LT, ComparisonOp.GT, ComparisonOp.LE, ComparisonOp.GE]


@dataclass
class WorkloadSpec:
    """Knobs describing a workload family."""

    num_queries: int = 100
    aggregations: tuple[AggregateFunction, ...] = (
        AggregateFunction.COUNT,
        AggregateFunction.SUM,
        AggregateFunction.AVG,
    )
    min_predicates: int = 1
    max_predicates: int = 1
    min_selectivity: float = 1e-5
    allow_or: bool = False
    allow_categorical_predicates: bool = True
    seed: int = 0

    @classmethod
    def initial_experiments(cls, num_queries: int = 100, seed: int = 0) -> "WorkloadSpec":
        """The Fig. 8 workload: single-predicate COUNT/SUM/AVG queries."""
        return cls(num_queries=num_queries, seed=seed)

    @classmethod
    def scaled_experiments(cls, num_queries: int = 400, seed: int = 0) -> "WorkloadSpec":
        """The Table 5 / Fig. 10 workload: all aggregations, 1–5 predicates."""
        return cls(
            num_queries=num_queries,
            aggregations=tuple(AggregateFunction),
            min_predicates=1,
            max_predicates=5,
            min_selectivity=1e-6,
            allow_or=True,
            seed=seed,
        )


@dataclass
class QueryGenerator:
    """Random query generator bound to one table."""

    table: Table
    spec: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.spec.seed)
        self._numeric_columns = [
            c.name
            for c in self.table.schema
            if c.is_numeric and np.isfinite(self.table.column(c.name)).any()
        ]
        self._categorical_columns = list(self.table.schema.categorical_names)
        if not self._numeric_columns:
            raise ValueError("workload generation needs at least one numeric column")

    # ------------------------------------------------------------------ #

    def generate(self) -> list[Query]:
        """Generate the workload, enforcing the minimum-selectivity constraint."""
        queries: list[Query] = []
        attempts = 0
        max_attempts = self.spec.num_queries * 30
        while len(queries) < self.spec.num_queries and attempts < max_attempts:
            attempts += 1
            query = self._generate_one()
            if query is None:
                continue
            selectivity = self._selectivity(query.predicate)
            if selectivity < self.spec.min_selectivity:
                continue
            queries.append(query)
        return queries

    # ------------------------------------------------------------------ #

    def _generate_one(self) -> Query | None:
        func = AggregateFunction(self._rng.choice([f.value for f in self.spec.aggregations]))
        agg_column = str(self._rng.choice(self._numeric_columns))
        num_predicates = int(
            self._rng.integers(self.spec.min_predicates, self.spec.max_predicates + 1)
        )
        conditions = [self._random_condition() for _ in range(num_predicates)]
        conditions = [c for c in conditions if c is not None]
        if len(conditions) < self.spec.min_predicates:
            return None
        predicate = self._combine(conditions)
        return Query(
            aggregations=[Aggregation(func=func, column=agg_column)],
            table=self.table.name,
            predicate=predicate,
        )

    def _combine(self, conditions: list[Condition]) -> Predicate:
        if len(conditions) == 1:
            return conditions[0]
        if not self.spec.allow_or:
            return PredicateNode(LogicalOp.AND, list(conditions))
        # Mix AND / OR: group a random prefix under AND, rest under OR,
        # producing trees like (P1 AND P2) OR P3 that exercise precedence.
        if self._rng.random() < 0.6:
            return PredicateNode(LogicalOp.AND, list(conditions))
        split = int(self._rng.integers(1, len(conditions)))
        left = conditions[:split]
        right = conditions[split:]
        left_node: Predicate = left[0] if len(left) == 1 else PredicateNode(LogicalOp.AND, left)
        right_node: Predicate = right[0] if len(right) == 1 else PredicateNode(LogicalOp.AND, right)
        return PredicateNode(LogicalOp.OR, [left_node, right_node])

    def _random_condition(self) -> Condition | None:
        use_categorical = (
            self.spec.allow_categorical_predicates
            and self._categorical_columns
            and self._rng.random() < 0.25
        )
        if use_categorical:
            column = str(self._rng.choice(self._categorical_columns))
            values = [v for v in self.table.column(column) if v is not None]
            if not values:
                return None
            literal = str(values[int(self._rng.integers(0, len(values)))])
            op = ComparisonOp.EQ if self._rng.random() < 0.85 else ComparisonOp.NE
            return Condition(column=column, op=op, literal=literal)
        column = str(self._rng.choice(self._numeric_columns))
        values = self.table.column(column)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return None
        quantile = float(self._rng.uniform(0.05, 0.95))
        literal = float(np.quantile(finite, quantile))
        if self._rng.random() < 0.1 and len(np.unique(finite)) < 1000:
            op = ComparisonOp.EQ
            literal = float(finite[int(self._rng.integers(0, finite.size))])
        else:
            op = _RANGE_OPS[int(self._rng.integers(0, len(_RANGE_OPS)))]
        return Condition(column=column, op=op, literal=round(literal, 4))

    def _selectivity(self, predicate: Predicate | None) -> float:
        mask = predicate_mask(predicate, self.table.columns)
        return float(mask.mean()) if mask.size else 0.0
